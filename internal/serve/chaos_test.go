// Chaos tests: the crash-only contract, exercised in-process. The shell
// half (real SIGKILL against a real atacd) lives in scripts/chaos_smoke.sh;
// these tests cover the same guarantees where Go can assert precisely —
// restart-resume round trips with zero duplicate simulations, orphan
// detection, slow-consumer SSE eviction, unwritable-store health, panic
// isolation, and request timeouts.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/system"
)

// durableRunner builds a Runner wired to a persistent cache + journal in
// dir, the way atacd wires one.
func durableRunner(t *testing.T, dir string) *experiments.Runner {
	t.Helper()
	r := experiments.NewRunner(experiments.Options{Cores: 16, Scale: 1, Seed: 1})
	c, err := experiments.OpenCache(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	r.Cache = c
	j, err := experiments.OpenJournal(c.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	r.Journal = j
	return r
}

// TestRestartResume is the tentpole round trip: submit jobs, "SIGKILL"
// the daemon with one job done and two mid-flight, start a second daemon
// on the same ledger and cache, and require that (1) every job ID still
// answers, (2) the finished job is served from cache — zero duplicate
// simulations — and (3) results are byte-identical across the two lives.
func TestRestartResume(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, StoreFileName)
	specA, specB, specC := testSpec(0.11), testSpec(0.12), testSpec(0.13)

	// ---- Life 1: one job completes, two are killed mid-run. ----
	store1, err := OpenJobStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	r1 := durableRunner(t, dir)
	s1 := newServer(r1, Options{QueueDepth: 8, Workers: 2, Store: store1}, t.Logf)
	started := make(chan string, 4)
	release := make(chan struct{})
	s1.execute = func(ctx context.Context, cfg config.Config, bench string) (system.Result, error) {
		if bench == specA.Bench {
			return r1.RunContext(ctx, cfg, bench) // real run: caches + journals
		}
		started <- bench
		<-release
		return system.Result{}, errors.New("killed mid-run")
	}
	t.Cleanup(func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s1.Shutdown(ctx)
	})
	ts1 := httptest.NewServer(s1.Handler())

	_, stA := submit(t, ts1.URL, specA)
	_, stB := submit(t, ts1.URL, specB)
	_, stC := submit(t, ts1.URL, specC)
	waitDone(t, ts1.URL, stA.ID)
	resultA1 := fetchResult(t, ts1.URL, stA.ID)
	for i := 0; i < 2; i++ { // both B and C must be mid-flight at the kill
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("jobs B/C never started")
		}
	}
	// The "SIGKILL": stop routing requests and abandon the server — no
	// Shutdown, no store Close, workers frozen mid-job. The ledger now
	// holds A settled done, B and C merely accepted.
	ts1.Close()

	// ---- Life 2: a fresh daemon on the same ledger and cache. ----
	store2, err := OpenJobStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if got := store2.Pending(); got != 2 {
		t.Errorf("pending after crash = %d, want 2 (B and C)", got)
	}
	r2 := durableRunner(t, dir)
	s2 := New(r2, Options{QueueDepth: 8, Workers: 2, Store: store2}, t.Logf)
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
		ts2.Close()
		store2.Close()
	})

	// Every job the dead daemon owed an answer for resolves — including
	// the already-done one a lingering client may still poll.
	for _, id := range []string{stA.ID, stB.ID, stC.ID} {
		waitDone(t, ts2.URL, id)
	}
	var stA2 JobStatus
	resp, err := http.Get(ts2.URL + "/v1/jobs/" + stA.ID)
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(resp.Body).Decode(&stA2)
	resp.Body.Close()
	if !stA2.Resumed {
		t.Error("resumed job must report resumed=true")
	}

	// Zero duplicate simulations: A answers from the cache; only the two
	// killed jobs simulate.
	if fresh := r2.FreshRuns(); fresh != 2 {
		t.Errorf("FreshRuns after resume = %d, want 2 (B and C only)", fresh)
	}
	if hits := r2.CacheHits(); hits != 1 {
		t.Errorf("CacheHits after resume = %d, want 1 (A recalled)", hits)
	}

	// Byte parity across daemon lives.
	resultA2 := fetchResult(t, ts2.URL, stA.ID)
	if !bytes.Equal(resultA1, resultA2) {
		t.Error("job A's result differs across the restart")
	}

	// Parity with a direct (daemon-less) run: the killed-and-resumed job
	// produces the same result a fresh atacsim of the same spec would.
	var gotB system.Result
	if err := json.Unmarshal(fetchResult(t, ts2.URL, stB.ID), &gotB); err != nil {
		t.Fatal(err)
	}
	r3 := experiments.NewRunner(experiments.Options{Cores: 16, Scale: 1, Seed: 1})
	cfgB, err := experiments.BuildConfig(specB.Geometry)
	if err != nil {
		t.Fatal(err)
	}
	directB, err := r3.RunContext(context.Background(), cfgB, specB.Bench)
	if err != nil {
		t.Fatal(err)
	}
	gj, _ := json.Marshal(gotB)
	dj, _ := json.Marshal(directB)
	if !bytes.Equal(gj, dj) {
		t.Error("resumed result differs from a direct run of the same spec")
	}

	// The ledger settles back down: nothing left pending.
	if got := store2.Pending(); got != 0 {
		t.Errorf("pending after resume = %d, want 0", got)
	}
}

// TestResumeOrphans: a ledger entry whose spec no longer resolves to its
// stored identity (schema bump, changed campaign options) is orphaned —
// terminally settled, registered failed so clients get an answer, and
// counted on /healthz — rather than silently re-run under a stale ID.
func TestResumeOrphans(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, StoreFileName)
	st, err := OpenJobStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Accept("job-stale", "not-the-real-hash", testSpec(0.21)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	store, err := OpenJobStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	r := experiments.NewRunner(experiments.Options{Cores: 16, Scale: 1, Seed: 1})
	r.Cache = nil
	s := New(r, Options{QueueDepth: 4, Workers: 1, Store: store}, t.Logf)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
		store.Close()
	})

	resp, err := http.Get(ts.URL + "/v1/jobs/job-stale")
	if err != nil {
		t.Fatal(err)
	}
	var js JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&js)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("orphaned job must still answer, got %s", resp.Status)
	}
	if js.State != StateFailed || !strings.Contains(js.Error, "orphaned") {
		t.Errorf("orphaned job state=%q error=%q, want failed/orphaned", js.State, js.Error)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	_ = json.NewDecoder(hr.Body).Decode(&h)
	hr.Body.Close()
	if h.Store == nil || h.Store.Orphaned != 1 || h.Store.Resumed != 0 {
		t.Errorf("healthz store = %+v, want orphaned=1 resumed=0", h.Store)
	}

	// Terminal in the ledger too: a third daemon life would not see it.
	for _, e := range store.Entries() {
		if e.ID == "job-stale" && e.Status != StoreOrphaned {
			t.Errorf("ledger status = %q, want orphaned", e.Status)
		}
	}
}

// TestSlowSubscriberNeverBlocksDeliver is the satellite regression test:
// a stalled SSE subscriber must cost the event path nothing — deliveries
// stay non-blocking (drop-oldest into the bounded buffer) and a
// subscriber that never drains is evicted, while healthy subscribers and
// the job's event log are unaffected.
func TestSlowSubscriberNeverBlocksDeliver(t *testing.T) {
	var evicted int
	j := &Job{ID: "x", Hash: "x", state: StateRunning, onEvict: func(n int) { evicted += n }}
	_, stalled, cancelStalled := j.subscribe(0)
	defer cancelStalled()
	if stalled == nil {
		t.Fatal("expected a live channel")
	}

	// Enough deliveries to overflow the buffer and trip eviction, with a
	// wall-clock guard: if deliver ever blocks on the stalled consumer,
	// this loop hangs and the deadline catches it.
	const n = subBuffer + subEvictDrops + 64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			j.deliver(experiments.RunEvent{Phase: "epoch", Hash: "x"})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("deliver blocked on a stalled subscriber")
	}

	if evicted != 1 {
		t.Errorf("evicted = %d, want 1", evicted)
	}
	// The evicted subscriber's channel is closed after its buffered
	// backlog; the backlog is at most the buffer size.
	got := 0
	for range stalled {
		got++
	}
	if got > subBuffer {
		t.Errorf("stalled subscriber held %d events, want <= %d", got, subBuffer)
	}
	// The job's own log is complete: drops apply per subscriber, never to
	// the record (which is what Last-Event-ID replays from).
	j.mu.Lock()
	logged := len(j.events)
	j.mu.Unlock()
	if logged != n {
		t.Errorf("event log has %d events, want %d", logged, n)
	}

	// A fresh (healthy) subscriber replays the full log.
	replay, live, cancel := j.subscribe(0)
	defer cancel()
	if len(replay) != n {
		t.Errorf("replay = %d events, want %d", len(replay), n)
	}
	if live == nil {
		t.Error("job is still running; want a live channel")
	}
}

// TestHealthzStoreUnwritable: when the ledger cannot take an append the
// daemon reports store-unwritable (503) and refuses new work, then
// recovers without a restart once the path is fixed.
func TestHealthzStoreUnwritable(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, StoreFileName)
	store, err := OpenJobStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	r := experiments.NewRunner(experiments.Options{Cores: 16, Scale: 1, Seed: 1})
	r.Cache = nil
	s := New(r, Options{QueueDepth: 4, Workers: 1, Store: store}, t.Logf)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})

	health := func() (Health, int) {
		t.Helper()
		hr, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		var h Health
		_ = json.NewDecoder(hr.Body).Decode(&h)
		return h, hr.StatusCode
	}
	if h, code := health(); code != http.StatusOK || h.Store == nil || !h.Store.Writable {
		t.Fatalf("healthy daemon: code=%d store=%+v", code, h.Store)
	}

	// Break the ledger path (a directory defeats O_APPEND even for root)
	// and drop the held handle, simulating the state after a failed
	// append on a dead disk.
	breakStore(t, store)
	if h, code := health(); code != http.StatusServiceUnavailable || h.Status != "store-unwritable" {
		t.Errorf("broken store: code=%d status=%q, want 503/store-unwritable", code, h.Status)
	} else if h.Store.LastErr == "" {
		t.Error("store-unwritable health must carry the error")
	}
	// New work is refused: accepting a job the daemon could lose would
	// break the durability promise behind the 202.
	if resp, _ := submit(t, ts.URL, testSpec(0.31)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit with unwritable store: %s, want 503", resp.Status)
	}

	fixStore(t, store)
	if h, code := health(); code != http.StatusOK || h.Status != "ok" {
		t.Errorf("fixed store: code=%d status=%q, want 200/ok", code, h.Status)
	}
	if resp, _ := submit(t, ts.URL, testSpec(0.31)); resp.StatusCode != http.StatusAccepted {
		t.Errorf("submit after fix: %s, want 202", resp.Status)
	}
}

func breakStore(t *testing.T, store *JobStore) {
	t.Helper()
	store.mu.Lock()
	if store.f != nil {
		store.f.Close()
		store.f = nil
	}
	store.mu.Unlock()
	if err := os.Remove(store.Path()); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(store.Path(), 0o755); err != nil {
		t.Fatal(err)
	}
}

func fixStore(t *testing.T, store *JobStore) {
	t.Helper()
	if err := os.Remove(store.Path()); err != nil {
		t.Fatal(err)
	}
}

// TestHandlerPanicIsolated: a panicking handler answers 500 and counts on
// /metrics; the daemon survives.
func TestHandlerPanicIsolated(t *testing.T) {
	r := experiments.NewRunner(experiments.Options{Cores: 16, Scale: 1, Seed: 1})
	r.Cache = nil
	s := New(r, Options{QueueDepth: 4, Workers: 1}, t.Logf)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	h := s.recovered(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panicking handler: %d, want 500", rec.Code)
	}
	if got := s.met.panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
}

// TestRequestTimeout: JSON endpoints are bounded; a handler that stalls
// longer than the per-request deadline answers 503 with the timeout body
// instead of holding the connection forever.
func TestRequestTimeout(t *testing.T) {
	r := experiments.NewRunner(experiments.Options{Cores: 16, Scale: 1, Seed: 1})
	r.Cache = nil
	s := New(r, Options{QueueDepth: 4, Workers: 1, RequestTimeout: 30 * time.Millisecond}, t.Logf)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	stall := s.timed(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // TimeoutHandler cancels us
		case <-time.After(5 * time.Second):
		}
	})
	ts := httptest.NewServer(stall)
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("stalled handler: %s, want 503", resp.Status)
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("timeout body must be the JSON error payload: %v %+v", err, e)
	}
}
