// Package serve turns the campaign engine into a simulation-as-a-service
// daemon: an HTTP/JSON API over experiments.Runner that inherits its
// worker pool, singleflight dedup, persistent cache, journal, retries and
// deadlines, and adds what a long-lived service needs — a bounded job
// queue with admission control, cross-request coalescing on the run hash,
// live progress streaming (Server-Sent Events fed by the epoch metrics
// layer), Prometheus-style /metrics, and graceful drain on SIGTERM via
// the campaign's two-stage shutdown machinery.
//
// The daemon is crash-only (store.go): accepted jobs are persisted to a
// JSONL ledger before the 202 response, startup replays the ledger and
// re-enqueues everything unsettled, and the campaign cache + journal
// guarantee the replay costs zero duplicate simulations. HTTP handlers
// are panic-isolated and (except the SSE stream) bounded by a per-request
// timeout, and SSE subscribers are evicted rather than ever back-pressuring
// the simulation's event path.
//
// API:
//
//	POST /v1/jobs              submit a JobSpec; 202 new, 200 coalesced,
//	                           429+Retry-After queue full, 503 draining
//	                           or job store unwritable
//	GET  /v1/jobs              list job statuses
//	GET  /v1/jobs/{id}         one job's status
//	GET  /v1/jobs/{id}/result  the completed system.Result (202 while
//	                           pending, 500 if the run failed)
//	GET  /v1/jobs/{id}/events  SSE: replayed + live RunEvents, with ids;
//	                           honors Last-Event-ID on reconnect
//	GET  /healthz              daemon health, version, cache schema,
//	                           job-store state (503 when unwritable)
//	GET  /metrics              Prometheus text exposition
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/photonics"
	"repro/internal/system"
	"repro/internal/tech"
	"repro/internal/version"
	"repro/internal/workload"
)

// Options sizes the daemon.
type Options struct {
	// QueueDepth bounds how many submitted jobs may wait for a worker;
	// beyond it submissions are rejected with 429. Zero means 64.
	QueueDepth int
	// Workers is how many jobs execute concurrently. Zero means the
	// Runner's job default (REPRO_JOBS env, else GOMAXPROCS).
	Workers int
	// RetryAfter is the hint returned with 429 responses. Zero means 5s.
	RetryAfter time.Duration
	// RequestTimeout bounds every non-streaming HTTP request. Zero means
	// 15s; negative disables the bound (tests).
	RequestTimeout time.Duration
	// Store, if non-nil, is the durable job ledger: accepted jobs are
	// persisted before the 202 response and replayed (re-enqueued) on
	// startup, making the daemon survivable under SIGKILL. Nil serves
	// non-durably.
	Store *JobStore
	// Cluster, if non-nil, joins this daemon to a peer ring: submits for
	// hashes owned by other nodes are forwarded (with local failover),
	// and the local result cache is served to peers. Nil is single-node.
	Cluster *ClusterConfig
}

// Server is the daemon: a job registry and bounded queue in front of one
// experiments.Runner. Create with New, serve Handler(), stop with Drain
// then Shutdown.
type Server struct {
	runner *experiments.Runner
	opt    Options
	logf   func(format string, args ...any)

	mu     sync.Mutex
	jobs   map[string]*Job // by short ID
	byHash map[string]*Job // same jobs, by full run hash
	queue  chan *Job
	closed bool // queue closed (Shutdown)

	draining atomic.Bool
	drainCh  chan struct{}
	workers  sync.WaitGroup
	resumer  sync.WaitGroup
	baseCtx  context.Context

	met metricsState

	// execute is the simulation seam: Runner.RunContext in production,
	// a stub in queue/admission/chaos tests.
	execute func(ctx context.Context, cfg config.Config, bench string) (system.Result, error)

	// benches is the set of valid application benchmark names, resolved
	// once; synth: pseudo-benchmarks are validated structurally instead.
	benches map[string]bool
}

// New builds a Server on the Runner, wires the Runner's Events hook to
// the per-job fan-out, and — when Options.Store is set — replays the job
// ledger, re-enqueueing every job the previous process owed an answer
// for. The Runner should already carry its cache, journal and retry
// policy; New additionally sets Events (and leaves EpochCycles to the
// caller — atacd sets it so fresh runs stream epoch progress).
func New(r *experiments.Runner, opt Options, logf func(format string, args ...any)) *Server {
	s := newServer(r, opt, logf)
	s.resume()
	return s
}

// newServer is New without the ledger replay (chaos tests stub execute
// between construction and resume).
func newServer(r *experiments.Runner, opt Options, logf func(format string, args ...any)) *Server {
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 64
	}
	if opt.Workers <= 0 {
		opt.Workers = experiments.DefaultJobs()
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = 5 * time.Second
	}
	if opt.RequestTimeout == 0 {
		opt.RequestTimeout = 15 * time.Second
	}
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{
		runner:  r,
		opt:     opt,
		logf:    logf,
		jobs:    make(map[string]*Job),
		byHash:  make(map[string]*Job),
		queue:   make(chan *Job, opt.QueueDepth),
		drainCh: make(chan struct{}),
		baseCtx: context.Background(),
		benches: make(map[string]bool),
	}
	s.execute = r.RunContext
	r.Events = s.routeEvent
	for _, spec := range workload.ExtendedCatalog(16, 1, 1) {
		s.benches[spec.Name] = true
	}
	for i := 0; i < opt.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// SetBaseContext sets the context under which jobs execute (atacd passes
// the campaign's hard-cancellation context so a second SIGTERM aborts
// in-flight simulations at the kernel's next poll).
func (s *Server) SetBaseContext(ctx context.Context) { s.baseCtx = ctx }

// resume replays the durable job ledger: every job that is not terminally
// settled — and every settled one whose result a lingering client may
// still ask for — is re-registered and re-enqueued. Re-running settled
// work is free: done runs answer from the persistent cache and failed
// runs are recalled from the campaign journal, so a SIGKILL at any
// instant converges to the same bytes with zero duplicate simulations.
//
// Registration is synchronous (a client reconnecting the moment the
// listener opens must find its job), but enqueueing happens on a
// background goroutine with blocking sends: a ledger larger than the
// queue simply feeds the workers as they drain. Jobs whose stored spec no
// longer resolves to its stored identity — a schema bump or changed
// campaign options — are orphaned: settled terminally in the ledger and
// registered as failed so clients get an answer instead of a 404.
func (s *Server) resume() {
	if s.opt.Store == nil {
		return
	}
	var pending []*Job
	for _, e := range s.opt.Store.Entries() {
		if e.Status == StoreOrphaned || e.Status == StoreRejected {
			continue
		}
		cfg, hash, spec, err := s.resolve(e.Spec)
		if err != nil || hash != e.Hash {
			if err == nil {
				err = fmt.Errorf("stored identity %s resolves to %s (schema or campaign options changed)",
					shortID(e.Hash), shortID(hash))
			}
			s.met.orphaned.Add(1)
			s.opt.Store.Settle(e.ID, e.Hash, StoreOrphaned, err.Error())
			j := &Job{ID: e.ID, Hash: e.Hash, Spec: e.Spec, state: StateFailed,
				resumed: true, errText: "orphaned: " + err.Error(),
				created: time.Now(), finished: time.Now()}
			j.onEvict = s.noteEvicted
			s.mu.Lock()
			s.jobs[j.ID] = j
			s.byHash[j.Hash] = j
			s.mu.Unlock()
			s.logf("resume: orphaned job %s (%s): %v", e.ID, e.Spec.Bench, err)
			continue
		}
		j := &Job{ID: e.ID, Hash: hash, Spec: spec, Cfg: cfg, Peer: s.self(),
			state: StateQueued, resumed: true, created: time.Now()}
		j.onEvict = s.noteEvicted
		s.mu.Lock()
		s.jobs[j.ID] = j
		s.byHash[hash] = j
		s.mu.Unlock()
		s.met.resumed.Add(1)
		pending = append(pending, j)
	}
	if len(pending) == 0 {
		return
	}
	s.logf("resume: re-enqueueing %d job(s) from %s", len(pending), s.opt.Store.Path())
	s.resumer.Add(1)
	go func() {
		defer s.resumer.Done()
		for _, j := range pending {
			select {
			case s.queue <- j:
			case <-s.drainCh:
				// Draining: the job stays accepted in the ledger and the
				// next startup resumes it. Crash-only means never racing a
				// shutdown to finish bookkeeping.
				return
			}
		}
	}()
}

// noteEvicted counts SSE subscribers evicted for stalling (called from
// Job.deliver under the job's mutex).
func (s *Server) noteEvicted(n int) { s.met.sseEvicted.Add(uint64(n)) }

// routeEvent delivers a Runner event to the job owning its run hash.
// Events for runs not submitted through the API (none, in practice) are
// dropped.
func (s *Server) routeEvent(ev experiments.RunEvent) {
	s.mu.Lock()
	j := s.byHash[ev.Hash]
	s.mu.Unlock()
	if j != nil {
		j.deliver(ev)
	}
}

// worker executes queued jobs until the queue is closed by Shutdown.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.met.inflight.Add(1)
		j.start()
		start := time.Now()
		res, err := s.execute(s.baseCtx, j.Cfg, j.Spec.Bench)
		s.met.observe(time.Since(start))
		j.finish(res, err)
		if err != nil {
			s.met.failed.Add(1)
			s.opt.Store.Settle(j.ID, j.Hash, StoreFailed, err.Error())
			s.logf("job %s (%s): %v", j.ID, j.Spec.Bench, err)
		} else {
			s.met.done.Add(1)
			s.opt.Store.Settle(j.ID, j.Hash, StoreDone, "")
		}
		s.met.inflight.Add(^uint64(0))
	}
}

// Drain stops admitting new jobs: submissions return 503 and /healthz
// flips to draining. Idempotent; already-queued jobs still run (under a
// quiesced Runner, queued fresh work fails fast with ErrInterrupted while
// in-flight simulations complete and journal normally).
func (s *Server) Drain() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
}

// Draining returns a channel closed when Drain is called.
func (s *Server) Draining() <-chan struct{} { return s.drainCh }

// Shutdown drains (if not already draining), closes the queue, and waits
// for workers to finish the jobs they hold — or for ctx, whichever first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	s.resumer.Wait() // unblocked by drainCh; must not race the queue close
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the daemon's HTTP routes, each panic-isolated and —
// except the long-lived SSE stream — bounded by the per-request timeout.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/jobs", s.timed(s.handleSubmit))
	mux.Handle("GET /v1/jobs", s.timed(s.handleList))
	mux.Handle("GET /v1/jobs/{id}", s.timed(s.handleStatus))
	mux.Handle("GET /v1/jobs/{id}/result", s.timed(s.handleResult))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.Handle("GET /v1/cache/{hash}", s.timed(s.handleCacheGet))
	mux.Handle("PUT /v1/cache/{hash}", s.timed(s.handleCachePut))
	mux.Handle("GET /healthz", s.timed(s.handleHealthz))
	mux.Handle("GET /metrics", s.timed(s.handleMetrics))
	return s.recovered(mux)
}

// timed bounds one JSON endpoint with the per-request timeout. The
// standard TimeoutHandler both cancels the request context and guards the
// ResponseWriter after expiry, which is exactly the protection a
// misbehaving (slow-reading) peer calls for.
func (s *Server) timed(h http.HandlerFunc) http.Handler {
	if s.opt.RequestTimeout < 0 {
		return h
	}
	return http.TimeoutHandler(h, s.opt.RequestTimeout, `{"error":"request timed out"}`)
}

// recovered panic-isolates the HTTP surface, mirroring the campaign's
// worker isolation: a panicking handler logs its stack, counts on
// /metrics, and answers 500 — it never takes the daemon down with it.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler { // deliberate aborts pass through
				panic(p)
			}
			s.met.panics.Add(1)
			s.logf("panic in %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			// Best effort: if the handler already wrote, this is a no-op
			// beyond a log line from net/http.
			writeJSON(w, http.StatusInternalServerError, apiError{"internal error"})
		}()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// shortID abbreviates a run hash to the API's job-ID length.
func shortID(hash string) string {
	if len(hash) > 16 {
		return hash[:16]
	}
	return hash
}

// resolve validates a JobSpec and derives its config and run identity,
// returning the *resolved* spec — unspecified geometry fields replaced by
// the daemon's defaults (-cores, -seed) before hashing, so "whatever the
// daemon defaults to" and the explicit equivalent are the same job, and
// so the job store persists an identity that survives a restart with
// different defaults.
func (s *Server) resolve(spec JobSpec) (config.Config, string, JobSpec, error) {
	if spec.Bench == "" {
		return config.Config{}, "", spec, errors.New("missing bench")
	}
	if _, ok := experiments.ParseSynthBench(spec.Bench); !ok && !s.benches[spec.Bench] {
		return config.Config{}, "", spec, fmt.Errorf("unknown benchmark %q", spec.Bench)
	}
	if spec.Cores == 0 {
		spec.Cores = s.runner.Opt.Cores
	}
	if spec.Seed == 0 {
		spec.Seed = s.runner.Opt.Seed
	}
	// Technology scenario: jobs that name none inherit the daemon's
	// -tech/-optics defaults. The resolved spec stores canonical registry
	// names so the persisted job identity is spelling-independent and
	// survives a restart under different daemon defaults.
	if spec.Tech == "" {
		spec.Tech = s.runner.Opt.Tech
	}
	spec.Tech = tech.Canonical(spec.Tech)
	if spec.Optics == "" {
		spec.Optics = s.runner.Opt.Optics
	}
	spec.Optics = photonics.Canonical(spec.Optics)
	cfg, err := experiments.BuildConfig(spec.Geometry)
	if err != nil {
		return config.Config{}, "", spec, err
	}
	return cfg, s.runner.RunHash(cfg, spec.Bench), spec, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"bad request body: " + err.Error()})
		return
	}
	cfg, hash, spec, err := s.resolve(spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	s.met.submitted.Add(1)

	// Cluster routing: a submit for a hash another node owns is forwarded
	// there — unless this request already hopped once (loop guard), the
	// job is already known locally (coalescing is cheaper and correct), or
	// the owner is down (execute locally; the hash keeps it idempotent).
	if r.Header.Get(ForwardHeader) != "" {
		s.met.receivedForwards.Add(1)
	} else if owner, forward := s.forwardTarget(hash); forward {
		s.mu.Lock()
		_, known := s.byHash[hash]
		s.mu.Unlock()
		if !known && s.forwardSubmit(w, owner, spec) {
			return
		}
	}

	s.mu.Lock()
	if j, ok := s.byHash[hash]; ok {
		// Identical spec already known — whatever its state, this request
		// coalesces onto it and never costs a second simulation. This is
		// also what makes client re-submits after a transport error (or a
		// daemon restart) idempotent: the run hash is the request identity.
		j.mu.Lock()
		j.coalesced++
		j.mu.Unlock()
		s.mu.Unlock()
		s.met.coalesced.Add(1)
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	if s.draining.Load() || s.closed {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{"draining: not admitting new jobs"})
		return
	}
	j := &Job{
		ID:      shortID(hash),
		Hash:    hash,
		Spec:    spec,
		Cfg:     cfg,
		Peer:    s.self(),
		state:   StateQueued,
		created: time.Now(),
		onEvict: s.noteEvicted,
	}
	// Durability before admission: the job must be on disk before any
	// response promises it. An unwritable ledger refuses work — /healthz
	// flips 503 in parallel so load balancers stop routing here.
	if err := s.opt.Store.Accept(j.ID, hash, spec); err != nil {
		s.mu.Unlock()
		s.met.storeErrors.Add(1)
		s.logf("job store: %v", err)
		writeJSON(w, http.StatusServiceUnavailable, apiError{"job store unwritable: " + err.Error()})
		return
	}
	// Register before enqueueing: a worker may start the job the moment
	// it hits the queue, and routeEvent must already find it by hash.
	s.jobs[j.ID] = j
	s.byHash[hash] = j
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.ID)
		delete(s.byHash, hash)
		s.mu.Unlock()
		s.opt.Store.Settle(j.ID, hash, StoreRejected, "queue full")
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opt.RetryAfter/time.Second)))
		writeJSON(w, http.StatusTooManyRequests,
			apiError{fmt.Sprintf("queue full (%d jobs waiting); retry later", s.opt.QueueDepth)})
		return
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.Status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	if res, ok := j.Result(); ok {
		writeJSON(w, http.StatusOK, res)
		return
	}
	if j.State() == StateFailed {
		writeJSON(w, http.StatusInternalServerError, j.Status())
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleEvents streams the job's RunEvents as Server-Sent Events: the
// log so far is replayed, then live events follow until the job reaches a
// terminal state (or the client goes away, or it stalls long enough to be
// evicted). Every event carries an SSE id — its index in the job's event
// log — and the handler honors the standard Last-Event-ID header, so a
// reconnecting client (atacctl watch after a daemon restart) resumes
// exactly where its previous connection tore.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{"streaming unsupported"})
		return
	}
	offset := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if last, err := strconv.Atoi(v); err == nil && last >= 0 {
			offset = last + 1
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := j.subscribe(offset)
	defer cancel()
	s.met.sseSubs.Add(1)
	defer s.met.sseSubs.Add(^uint64(0))

	emit := func(se seqEvent) {
		data, _ := json.Marshal(se.Ev)
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", se.Seq, se.Ev.Phase, data)
		fl.Flush()
	}
	for _, se := range replay {
		emit(se)
	}
	if live == nil { // already terminal: replay was the whole story
		fmt.Fprintf(w, "event: end\ndata: {\"state\":%q}\n\n", j.State())
		fl.Flush()
		return
	}
	for {
		select {
		case se, ok := <-live:
			if !ok {
				if st := j.State(); st == StateDone || st == StateFailed {
					fmt.Fprintf(w, "event: end\ndata: {\"state\":%q}\n\n", st)
				} else {
					// Evicted for stalling: tell the client to reconnect
					// (with Last-Event-ID) rather than pretending the job
					// ended.
					fmt.Fprint(w, "event: evicted\ndata: {}\n\n")
				}
				fl.Flush()
				return
			}
			emit(se)
		case <-r.Context().Done():
			return
		}
	}
}

// Health is the /healthz body.
type Health struct {
	Status      string       `json:"status"` // ok | draining | store-unwritable
	Version     string       `json:"version"`
	CacheSchema int          `json:"cache_schema"`
	Jobs        int            `json:"jobs"`
	QueueDepth  int            `json:"queue_depth"`
	QueueCap    int            `json:"queue_capacity"`
	Store       *StoreHealth   `json:"store,omitempty"`
	Cluster     *ClusterHealth `json:"cluster,omitempty"`
}

// StoreHealth is the job ledger's slice of /healthz: where it lives,
// whether it can take an append right now, and the resume bookkeeping a
// fleet operator watches after rolling restarts.
type StoreHealth struct {
	Path     string `json:"path"`
	Writable bool   `json:"writable"`
	Pending  int    `json:"pending"`  // accepted, not yet terminally settled
	Resumed  int    `json:"resumed"`  // re-enqueued from the ledger at startup
	Orphaned int    `json:"orphaned"` // stored identity no longer resolves
	LastErr  string `json:"last_error,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	depth := len(s.queue)
	s.mu.Unlock()
	h := Health{
		Status:      "ok",
		Version:     version.String(),
		CacheSchema: version.CacheSchema,
		Jobs:        n,
		QueueDepth:  depth,
		QueueCap:    s.opt.QueueDepth,
		Cluster:     s.clusterHealth(),
	}
	code := http.StatusOK
	if st := s.opt.Store; st != nil {
		sh := &StoreHealth{
			Path:     st.Path(),
			Writable: st.Writable(),
			Pending:  st.Pending(),
			Resumed:  int(s.met.resumed.Load()),
			Orphaned: int(s.met.orphaned.Load()),
		}
		if err := st.LastErr(); err != nil {
			sh.LastErr = err.Error()
		}
		h.Store = sh
		if !sh.Writable {
			// A daemon that cannot persist work must not be routed new
			// work: accepting a job it could lose breaks the crash-only
			// contract.
			h.Status = "store-unwritable"
			code = http.StatusServiceUnavailable
		}
	}
	if s.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, s.runner, s.opt.Store, len(s.queue), s.opt.QueueDepth, s.opt.Cluster)
}

func configString(cfg config.Config) string {
	return fmt.Sprintf("%v/%v%d/c%d", cfg.Network.Kind, cfg.Coherence.Kind,
		cfg.Coherence.Sharers, cfg.Cores)
}
