// Package serve turns the campaign engine into a simulation-as-a-service
// daemon: an HTTP/JSON API over experiments.Runner that inherits its
// worker pool, singleflight dedup, persistent cache, journal, retries and
// deadlines, and adds what a long-lived service needs — a bounded job
// queue with admission control, cross-request coalescing on the run hash,
// live progress streaming (Server-Sent Events fed by the epoch metrics
// layer), Prometheus-style /metrics, and graceful drain on SIGTERM via
// the campaign's two-stage shutdown machinery.
//
// API:
//
//	POST /v1/jobs              submit a JobSpec; 202 new, 200 coalesced,
//	                           429+Retry-After queue full, 503 draining
//	GET  /v1/jobs              list job statuses
//	GET  /v1/jobs/{id}         one job's status
//	GET  /v1/jobs/{id}/result  the completed system.Result (202 while
//	                           pending, 500 if the run failed)
//	GET  /v1/jobs/{id}/events  SSE: replayed + live RunEvents
//	GET  /healthz              daemon health, version, cache schema
//	GET  /metrics              Prometheus text exposition
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/system"
	"repro/internal/version"
	"repro/internal/workload"
)

// Options sizes the daemon.
type Options struct {
	// QueueDepth bounds how many submitted jobs may wait for a worker;
	// beyond it submissions are rejected with 429. Zero means 64.
	QueueDepth int
	// Workers is how many jobs execute concurrently. Zero means the
	// Runner's job default (REPRO_JOBS env, else GOMAXPROCS).
	Workers int
	// RetryAfter is the hint returned with 429 responses. Zero means 5s.
	RetryAfter time.Duration
}

// Server is the daemon: a job registry and bounded queue in front of one
// experiments.Runner. Create with New, serve Handler(), stop with Drain
// then Shutdown.
type Server struct {
	runner *experiments.Runner
	opt    Options
	logf   func(format string, args ...any)

	mu     sync.Mutex
	jobs   map[string]*Job // by short ID
	byHash map[string]*Job // same jobs, by full run hash
	queue  chan *Job
	closed bool // queue closed (Shutdown)

	draining atomic.Bool
	drainCh  chan struct{}
	workers  sync.WaitGroup
	baseCtx  context.Context

	met metricsState

	// execute is the simulation seam: Runner.RunContext in production,
	// a stub in queue/admission tests.
	execute func(ctx context.Context, cfg config.Config, bench string) (system.Result, error)

	// benches is the set of valid application benchmark names, resolved
	// once; synth: pseudo-benchmarks are validated structurally instead.
	benches map[string]bool
}

// New builds a Server on the Runner and wires the Runner's Events hook to
// the per-job fan-out. The Runner should already carry its cache, journal
// and retry policy; New additionally sets Events (and leaves EpochCycles
// to the caller — atacd sets it so fresh runs stream epoch progress).
func New(r *experiments.Runner, opt Options, logf func(format string, args ...any)) *Server {
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 64
	}
	if opt.Workers <= 0 {
		opt.Workers = experiments.DefaultJobs()
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = 5 * time.Second
	}
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{
		runner:  r,
		opt:     opt,
		logf:    logf,
		jobs:    make(map[string]*Job),
		byHash:  make(map[string]*Job),
		queue:   make(chan *Job, opt.QueueDepth),
		drainCh: make(chan struct{}),
		baseCtx: context.Background(),
		benches: make(map[string]bool),
	}
	s.execute = r.RunContext
	r.Events = s.routeEvent
	for _, spec := range workload.ExtendedCatalog(16, 1, 1) {
		s.benches[spec.Name] = true
	}
	for i := 0; i < opt.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// SetBaseContext sets the context under which jobs execute (atacd passes
// the campaign's hard-cancellation context so a second SIGTERM aborts
// in-flight simulations at the kernel's next poll).
func (s *Server) SetBaseContext(ctx context.Context) { s.baseCtx = ctx }

// routeEvent delivers a Runner event to the job owning its run hash.
// Events for runs not submitted through the API (none, in practice) are
// dropped.
func (s *Server) routeEvent(ev experiments.RunEvent) {
	s.mu.Lock()
	j := s.byHash[ev.Hash]
	s.mu.Unlock()
	if j != nil {
		j.deliver(ev)
	}
}

// worker executes queued jobs until the queue is closed by Shutdown.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.met.inflight.Add(1)
		j.start()
		start := time.Now()
		res, err := s.execute(s.baseCtx, j.Cfg, j.Spec.Bench)
		s.met.observe(time.Since(start))
		j.finish(res, err)
		if err != nil {
			s.met.failed.Add(1)
			s.logf("job %s (%s): %v", j.ID, j.Spec.Bench, err)
		} else {
			s.met.done.Add(1)
		}
		s.met.inflight.Add(^uint64(0))
	}
}

// Drain stops admitting new jobs: submissions return 503 and /healthz
// flips to draining. Idempotent; already-queued jobs still run (under a
// quiesced Runner, queued fresh work fails fast with ErrInterrupted while
// in-flight simulations complete and journal normally).
func (s *Server) Drain() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
}

// Draining returns a channel closed when Drain is called.
func (s *Server) Draining() <-chan struct{} { return s.drainCh }

// Shutdown drains (if not already draining), closes the queue, and waits
// for workers to finish the jobs they hold — or for ctx, whichever first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// resolve validates a JobSpec and derives its config and run identity.
// Unspecified geometry fields take the daemon's defaults (-cores, -seed)
// before hashing, so "whatever the daemon defaults to" and the explicit
// equivalent are the same job.
func (s *Server) resolve(spec JobSpec) (config.Config, string, error) {
	if spec.Bench == "" {
		return config.Config{}, "", errors.New("missing bench")
	}
	if _, ok := experiments.ParseSynthBench(spec.Bench); !ok && !s.benches[spec.Bench] {
		return config.Config{}, "", fmt.Errorf("unknown benchmark %q", spec.Bench)
	}
	if spec.Cores == 0 {
		spec.Cores = s.runner.Opt.Cores
	}
	if spec.Seed == 0 {
		spec.Seed = s.runner.Opt.Seed
	}
	cfg, err := experiments.BuildConfig(spec.Geometry)
	if err != nil {
		return config.Config{}, "", err
	}
	return cfg, s.runner.RunHash(cfg, spec.Bench), nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"bad request body: " + err.Error()})
		return
	}
	cfg, hash, err := s.resolve(spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	s.met.submitted.Add(1)

	s.mu.Lock()
	if j, ok := s.byHash[hash]; ok {
		// Identical spec already known — whatever its state, this request
		// coalesces onto it and never costs a second simulation.
		j.mu.Lock()
		j.coalesced++
		j.mu.Unlock()
		s.mu.Unlock()
		s.met.coalesced.Add(1)
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	if s.draining.Load() || s.closed {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{"draining: not admitting new jobs"})
		return
	}
	j := &Job{
		ID:      hash[:16],
		Hash:    hash,
		Spec:    spec,
		Cfg:     cfg,
		state:   StateQueued,
		created: time.Now(),
	}
	// Register before enqueueing: a worker may start the job the moment
	// it hits the queue, and routeEvent must already find it by hash.
	s.jobs[j.ID] = j
	s.byHash[hash] = j
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.ID)
		delete(s.byHash, hash)
		s.mu.Unlock()
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opt.RetryAfter/time.Second)))
		writeJSON(w, http.StatusTooManyRequests,
			apiError{fmt.Sprintf("queue full (%d jobs waiting); retry later", s.opt.QueueDepth)})
		return
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.Status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	if res, ok := j.Result(); ok {
		writeJSON(w, http.StatusOK, res)
		return
	}
	if j.State() == StateFailed {
		writeJSON(w, http.StatusInternalServerError, j.Status())
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleEvents streams the job's RunEvents as Server-Sent Events: the
// full log so far is replayed, then live events follow until the job
// reaches a terminal state (or the client goes away). Event names are
// the run phases; payloads are the JSON RunEvents.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{"streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := j.subscribe()
	defer cancel()
	s.met.sseSubs.Add(1)
	defer s.met.sseSubs.Add(^uint64(0))

	emit := func(ev experiments.RunEvent) {
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Phase, data)
		fl.Flush()
	}
	for _, ev := range replay {
		emit(ev)
	}
	if live == nil { // already terminal: replay was the whole story
		fmt.Fprintf(w, "event: end\ndata: {\"state\":%q}\n\n", j.State())
		fl.Flush()
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				fmt.Fprintf(w, "event: end\ndata: {\"state\":%q}\n\n", j.State())
				fl.Flush()
				return
			}
			emit(ev)
		case <-r.Context().Done():
			return
		}
	}
}

// Health is the /healthz body.
type Health struct {
	Status      string `json:"status"` // ok | draining
	Version     string `json:"version"`
	CacheSchema int    `json:"cache_schema"`
	Jobs        int    `json:"jobs"`
	QueueDepth  int    `json:"queue_depth"`
	QueueCap    int    `json:"queue_capacity"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	depth := len(s.queue)
	s.mu.Unlock()
	h := Health{
		Status:      "ok",
		Version:     version.String(),
		CacheSchema: version.CacheSchema,
		Jobs:        n,
		QueueDepth:  depth,
		QueueCap:    s.opt.QueueDepth,
	}
	code := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, s.runner, len(s.queue), s.opt.QueueDepth)
}

func configString(cfg config.Config) string {
	return fmt.Sprintf("%v/%v%d/c%d", cfg.Network.Kind, cfg.Coherence.Kind,
		cfg.Coherence.Sharers, cfg.Cores)
}
