package repro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section V). Each BenchmarkFigN runs the corresponding
// experiment and prints the same rows/series the paper reports; run with
//
//	go test -bench=. -benchmem
//
// The campaign scale defaults to 64 cores so a full pass stays tractable;
// set REPRO_FULL=1 (or REPRO_CORES=n) for the paper's 1024-core geometry.
// All benchmarks share one memoized campaign, mirroring how the paper's
// figures share the same underlying simulations. The campaign engine's
// environment knobs apply here too: REPRO_JOBS caps concurrent simulations
// (each figure prefetches its run-set through the shared worker pool) and
// REPRO_CACHE names a persistent result cache directory so repeat bench
// runs skip simulation entirely.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
)

var (
	campaignOnce sync.Once
	campaign     *experiments.Runner
)

func sharedCampaign() *experiments.Runner {
	campaignOnce.Do(func() {
		campaign = experiments.NewRunner(experiments.DefaultOptions())
	})
	return campaign
}

// runFigure executes the experiment once per benchmark invocation and
// prints its table on the first iteration. Memoization makes repeated
// iterations (b.N > 1) nearly free.
func runFigure(b *testing.B, name string, f func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := f()
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if i == 0 {
			fmt.Println(t)
		}
	}
}

func BenchmarkFig3_LatencyVsLoad(b *testing.B) {
	o := sharedCampaign().Opt
	runFigure(b, "Fig3", func() (*experiments.Table, error) {
		return experiments.Fig3(o, nil), nil
	})
}

func BenchmarkFig4_Runtime(b *testing.B) {
	runFigure(b, "Fig4", sharedCampaign().Fig4)
}

func BenchmarkFig5_TrafficMix(b *testing.B) {
	runFigure(b, "Fig5", sharedCampaign().Fig5)
}

func BenchmarkFig6_OfferedLoad(b *testing.B) {
	runFigure(b, "Fig6", sharedCampaign().Fig6)
}

func BenchmarkFig7_EnergyBreakdown(b *testing.B) {
	runFigure(b, "Fig7", sharedCampaign().Fig7)
}

func BenchmarkFig8_EnergyDelay(b *testing.B) {
	runFigure(b, "Fig8", func() (*experiments.Table, error) {
		t, avgB, avgP, err := sharedCampaign().Fig8()
		if err == nil {
			b.ReportMetric(avgB, "EDBCast/ATAC+")
			b.ReportMetric(avgP, "EDPure/ATAC+")
		}
		return t, err
	})
}

func BenchmarkFig9_WaveguideLoss(b *testing.B) {
	runFigure(b, "Fig9", sharedCampaign().Fig9)
}

func BenchmarkFig10_Area(b *testing.B) {
	runFigure(b, "Fig10", func() (*experiments.Table, error) {
		// Area is a model-only figure: always evaluated at the paper's
		// 1024-core geometry.
		o := sharedCampaign().Opt
		o.Cores = 1024
		return experiments.Fig10(o)
	})
}

func BenchmarkFig11_FlitWidth(b *testing.B) {
	runFigure(b, "Fig11", sharedCampaign().Fig11)
}

func BenchmarkFig12_BNetVsStarNet(b *testing.B) {
	runFigure(b, "Fig12", sharedCampaign().Fig12)
}

func BenchmarkFig13_RoutingED(b *testing.B) {
	runFigure(b, "Fig13", sharedCampaign().Fig13)
}

func BenchmarkFig14_CoherenceED(b *testing.B) {
	runFigure(b, "Fig14", sharedCampaign().Fig14)
}

func BenchmarkFig15_SharerDelay(b *testing.B) {
	runFigure(b, "Fig15", sharedCampaign().Fig15)
}

func BenchmarkFig16_SharerEnergy(b *testing.B) {
	runFigure(b, "Fig16", sharedCampaign().Fig16)
}

func BenchmarkFig17_CoreEnergy(b *testing.B) {
	runFigure(b, "Fig17", sharedCampaign().Fig17)
}

func BenchmarkTableV_LinkUtilization(b *testing.B) {
	runFigure(b, "TableV", sharedCampaign().TableV)
}

// BenchmarkAblations evaluates the design choices DESIGN.md calls out:
// SWMR broadcast support, receive-network count, and select-link lag.
func BenchmarkAblations(b *testing.B) {
	runFigure(b, "Ablations", sharedCampaign().Ablations)
}
