// Command figures regenerates every table and figure of the paper's
// evaluation section and writes them to stdout (and optionally a file).
//
// Usage:
//
//	figures -cores 256            # the whole campaign at 256 cores
//	figures -cores 1024 -only 8   # just Fig 8 at paper scale
//
// The campaign is crash-safe and resumable: run-state transitions are
// write-ahead journaled next to the result cache, a failed or panicking
// run degrades its figure cells instead of killing the campaign, and a
// SIGINT/SIGTERM drains in-flight runs (second signal, or -grace expiry,
// cancels them) before rendering what completed. Exit codes: 0 all runs
// completed, 1 fatal setup/I-O error, 3 finished degraded (some runs
// terminally failed), 4 interrupted (re-run the same command to resume).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"path/filepath"
	"strconv"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/photonics"
	"repro/internal/plot"
	"repro/internal/report"
	"repro/internal/tech"
	"repro/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	os.Exit(run())
}

func run() int {
	var (
		cores    = flag.Int("cores", 64, "total cores (paper: 1024)")
		scale    = flag.Int("scale", 1, "workload scale factor")
		seed     = flag.Int64("seed", 42, "simulation seed")
		techN    = flag.String("tech", "", "electrical technology scenario for every figure: "+strings.Join(tech.Scenarios(), ", ")+" (default 11nm)")
		opticsN  = flag.String("optics", "", "optical technology scenario for every figure: "+strings.Join(photonics.Variants(), ", ")+" (default baseline)")
		scenList = flag.String("scenarios", "", `techsweep scenario list, comma-separated "tech[/optics]" pairs (default: the built-in six-point sweep)`)
		topoList = flag.String("topos", "", `xtopo topology list, comma-separated network names, e.g. "bcast,corona,hybrid" (default: bcast,atac+,corona,hybrid; first entry is the normalization reference)`)
		only     = flag.String("only", "", "comma-separated subset, e.g. 3,8,tablev,techsweep,xtopo")
		out      = flag.String("o", "", "also write results to this file")
		svgDir   = flag.String("svg", "", "also render each figure as an SVG into this directory")
		format   = flag.String("format", "text", "output format: text, csv, json")
		quiet    = flag.Bool("q", false, "suppress per-run progress")
		jobsN    = flag.Int("jobs", 0, "max concurrent simulations (0: REPRO_JOBS env, else GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "parallel PDES shards per simulation (0: REPRO_SHARDS env, else 1 = serial; results and cache entries are identical either way)")
		cacheDir = flag.String("cache-dir", "", "persistent result cache directory (default: REPRO_CACHE env, else the user cache dir)")
		noCache  = flag.Bool("no-cache", false, "disable the persistent result cache")
		cacheMax = flag.Int64("cache-max-bytes", 0, "bound the on-disk cache, evicting least-recently-used entries (0 = unbounded)")
		clear    = flag.Bool("clear-cache", false, "invalidate the persistent result cache, then proceed")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")

		runTimeout  = flag.Duration("run-timeout", 0, "per-run wall-clock deadline, e.g. 5m (0 = none; overruns retry, then fail)")
		retries     = flag.Int("retries", 2, "extra attempts for transiently failed runs (panics, deadlines)")
		grace       = flag.Duration("grace", 15*time.Second, "drain window after SIGINT/SIGTERM before in-flight runs are cancelled")
		noJournal   = flag.Bool("no-journal", false, "disable the write-ahead run journal (journal.jsonl next to the cache)")
		retryFailed = flag.Bool("retry-failed", false, "re-attempt runs the journal recorded as terminally failed")
		showVer     = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return 0
	}
	if *pprofA != "" {
		go func() { log.Println(http.ListenAndServe(*pprofA, nil)) }()
	}
	start := time.Now()

	f, err := report.ParseFormat(*format)
	if err != nil {
		log.Print(err)
		return experiments.ExitFatal
	}
	// Resolve the technology scenario before spending any simulation time:
	// a typo should fail here, not after the first figure's runs.
	if _, err := tech.ByName(*techN); err != nil {
		log.Print(err)
		return experiments.ExitFatal
	}
	if _, err := photonics.ByName(*opticsN); err != nil {
		log.Print(err)
		return experiments.ExitFatal
	}
	scens, err := experiments.ParseScenarios(*scenList)
	if err != nil {
		log.Print(err)
		return experiments.ExitFatal
	}
	topos, err := parseTopologies(*topoList)
	if err != nil {
		log.Print(err)
		return experiments.ExitFatal
	}
	o := experiments.Options{Cores: *cores, Scale: *scale, Seed: *seed,
		Tech: *techN, Optics: *opticsN, Scenarios: scens, Topologies: topos}
	r := experiments.NewRunner(o)
	r.Jobs = *jobsN
	r.Shards = *shards
	r.Cache = openCache(*cacheDir, *noCache, *clear)
	if r.Cache != nil {
		r.Cache.MaxBytes = *cacheMax
	}
	r.Retries = *retries
	r.RunTimeout = *runTimeout
	r.Partial = true
	r.RecallFailures = !*retryFailed
	if !*quiet {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  ...", s) }
	}
	if r.Cache != nil {
		r.Cache.Log = func(s string) { log.Print(s) }
		if !*noJournal {
			j, err := experiments.OpenJournal(r.Cache.JournalPath())
			if err != nil {
				log.Printf("warning: %v (continuing without journal)", err)
			} else {
				r.Journal = j
				defer func() {
					if err := j.Close(); err != nil {
						log.Printf("warning: journal close: %v", err)
					}
				}()
			}
		}
	}
	_, stopSignals := r.InstallSignalHandler(*grace, log.Printf)
	defer stopSignals()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Print(err)
			return experiments.ExitFatal
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	want := map[string]bool{}
	for _, s := range strings.Split(strings.ToLower(*only), ",") {
		if s = strings.TrimSpace(s); s != "" {
			want[s] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	fmt.Fprintf(w, "ATAC+ evaluation campaign: %d cores, scale %d, seed %d, %s electronics, %s optics\n\n",
		o.Cores, o.Scale, o.Seed, tech.Canonical(o.Tech), photonics.Canonical(o.Optics))

	type job struct {
		id  string
		run func() (*experiments.Table, error)
	}
	jobs := []job{
		{"3", func() (*experiments.Table, error) { return experiments.Fig3(o, nil), nil }},
		{"4", r.Fig4},
		{"5", r.Fig5},
		{"6", r.Fig6},
		{"7", r.Fig7},
		{"8", func() (*experiments.Table, error) { t, _, _, err := r.Fig8(); return t, err }},
		{"9", r.Fig9},
		{"10", func() (*experiments.Table, error) { return experiments.Fig10(o) }},
		{"11", r.Fig11},
		{"12", r.Fig12},
		{"13", r.Fig13},
		{"14", r.Fig14},
		{"15", r.Fig15},
		{"16", r.Fig16},
		{"17", r.Fig17},
		{"tablev", r.TableV},
		{"techsweep", r.TechSweep},
		{"xtopo", r.Xtopo},
		{"ablations", r.Ablations},
		{"faults", func() (*experiments.Table, error) { return r.FaultSweep("radix") }},
	}
	// Declare the whole campaign's run-set up front so the worker pool is
	// saturated from the start, instead of discovering runs one figure at
	// a time. The serial loop below then renders from warm memo entries.
	var selected []string
	for _, j := range jobs {
		if sel(j.id) {
			selected = append(selected, j.id)
		}
	}
	r.Prefetch(r.CampaignRuns(selected))

	figureFailed := false
	for _, j := range jobs {
		if !sel(j.id) {
			continue
		}
		t, err := j.run()
		if err != nil {
			// Partial mode absorbs per-run failures into annotated cells;
			// an error here means the whole figure is unrenderable. Skip it
			// and keep going — the other figures are still worth emitting.
			log.Printf("figure %s: %v", j.id, err)
			figureFailed = true
			continue
		}
		if err := report.Write(w, t, f); err != nil {
			log.Print(err)
			return experiments.ExitFatal
		}
		if *svgDir != "" {
			if err := writeSVG(*svgDir, j.id, t); err != nil {
				log.Print(err)
				return experiments.ExitFatal
			}
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "campaign: %d simulations run, %d recalled from cache, %d failures recalled from journal\n",
			r.FreshRuns(), r.CacheHits(), r.RecalledFailures())
	}
	// Provenance manifest next to the figure outputs: what was run, from
	// which revision, how much came from the cache, and — for degraded
	// campaigns — the full failure/retry ledger.
	if dir := manifestDir(*svgDir, *out); dir != "" {
		p := r.Provenance(selected, time.Since(start))
		path := filepath.Join(dir, "manifest.json")
		if err := experiments.WriteManifest(path, p); err != nil {
			log.Printf("warning: manifest: %v", err)
		} else if !*quiet {
			fmt.Fprintln(os.Stderr, "provenance ->", path)
		}
	}

	code := r.ExitCode()
	if code == experiments.ExitOK && figureFailed {
		code = experiments.ExitDegraded
	}
	switch code {
	case experiments.ExitInterrupted:
		log.Printf("campaign interrupted; re-run the same command to resume from the journal")
	case experiments.ExitDegraded:
		log.Printf("campaign degraded: %d run(s) failed (see manifest failure ledger; -retry-failed re-attempts them)",
			len(r.FailedRuns()))
	}
	return code
}

// parseTopologies parses the -topos list through the shared network-name
// resolver, so the xtopo figure accepts exactly the spellings atacsim
// does. An empty string yields nil (the built-in four-topology set).
func parseTopologies(s string) ([]config.NetworkKind, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []config.NetworkKind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := experiments.ParseNetworkKind(part)
		if err != nil {
			return nil, fmt.Errorf("-topos: %v", err)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-topos %q names no topologies", s)
	}
	return out, nil
}

// manifestDir picks where the provenance manifest lives: beside the SVG
// outputs when rendered, else beside the -o results file. A stdout-only
// campaign leaves no files, so it gets no manifest either.
func manifestDir(svgDir, out string) string {
	if svgDir != "" {
		return svgDir
	}
	if out != "" {
		return filepath.Dir(out)
	}
	return ""
}

// openCache resolves the persistent result cache from the command line:
// -no-cache disables it, -cache-dir (else REPRO_CACHE, else the user cache
// dir) locates it, -clear-cache empties it first. Cache trouble is reported
// and degrades to uncached operation rather than aborting the campaign.
func openCache(dir string, disabled, clear bool) *experiments.Cache {
	if disabled {
		return nil
	}
	if dir == "" {
		dir = experiments.DefaultCacheDir()
	}
	if dir == "" {
		return nil
	}
	c, err := experiments.OpenCache(dir)
	if err != nil {
		log.Printf("warning: %v (continuing without cache)", err)
		return nil
	}
	if clear {
		if err := c.Invalidate(); err != nil {
			log.Printf("warning: %v", err)
		}
	}
	return c
}

// writeSVG renders a figure table as an SVG and writes fig<id>.svg:
// Fig 3 (latency vs load) becomes a log-y line chart, everything else a
// grouped bar chart.
func writeSVG(dir, id string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	parse := func(s string) (float64, bool) {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		return v, err == nil
	}
	path := filepath.Join(dir, "fig"+id+".svg")
	if id == "3" {
		l := &plot.Line{Title: t.Title, XLabel: t.Columns[0], YLabel: "latency (cycles)", LogY: true}
		for ci := 1; ci < len(t.Columns); ci++ {
			s := plot.Series{Name: t.Columns[ci]}
			for _, row := range t.Rows {
				x, okX := parse(row[0])
				y, okY := parse(row[ci])
				if okX && okY {
					s.X = append(s.X, x)
					s.Y = append(s.Y, y)
				}
			}
			l.Series = append(l.Series, s)
		}
		return os.WriteFile(path, []byte(l.RenderLine()), 0o644)
	}
	bar := plot.FromTable(t.Title, t.Columns[0], t.Columns, t.Rows, parse)
	return os.WriteFile(path, []byte(bar.RenderBar()), 0o644)
}
