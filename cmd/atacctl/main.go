// Command atacctl is the client for the atacd simulation daemon.
//
// Usage:
//
//	atacctl [-addr http://localhost:8347] [-retries N] <command> [flags]
//
//	submit  -bench radix -cores 16 [-net atac+] [-wait]   submit a job
//	status  [-id ID]                                      one job, or all
//	watch   -id ID                                        stream progress (SSE)
//	result  -id ID [-wait]                                fetch the result JSON
//	health                                                daemon /healthz
//
// submit -wait is the one-shot form: submit, stream progress to stderr,
// print the result JSON to stdout — the curlable equivalent of running
// atacsim remotely.
//
// The client is resilient by default (serve.Client): transient transport
// failures — a daemon being SIGKILLed and restarted mid-request, a proxy
// hiccup, a drain window — are retried with capped exponential backoff
// and deterministic jitter; submissions are idempotent (the run hash is
// the job identity, so a re-submit coalesces); and the SSE watch stream
// reconnects with Last-Event-ID, so a daemon restart mid--wait is
// invisible. 429 responses honor the server's Retry-After hint.
//
// Against a cluster, pass every node via -endpoints: reads hedge across
// them (a job lives on the node executing it), the watch stream rotates
// to a surviving node if its first one dies, and submit -wait resubmits
// the spec automatically when the whole cluster disowns the job (same
// run hash — the survivors serve the cached result or rerun it once).
//
// Exit codes:
//
//	0  success
//	1  transport or usage-independent error (after all retries)
//	2  usage error
//	3  the job itself terminally failed (the daemon is healthy)
//	5  the daemon's queue stayed full through every retry (shed load)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/version"
)

// Process exit codes (see the command comment).
const (
	exitOK        = 0
	exitErr       = 1
	exitUsage     = 2
	exitJobFailed = 3
	exitQueueFull = 5
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atacctl: ")
	os.Exit(run())
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: atacctl [-addr URL] [-retries N] {submit|status|watch|result|health} [flags]")
	flag.PrintDefaults()
}

func run() int {
	addr := flag.String("addr", "http://localhost:8347", "atacd base URL")
	endpoints := flag.String("endpoints", "", "comma-separated additional atacd base URLs (cluster peers); reads hedge across them")
	retries := flag.Int("retries", 8, "transient-failure retries per request (-1 disables)")
	quiet := flag.Bool("q", false, "suppress retry/reconnect narration")
	showVer := flag.Bool("version", false, "print the build version and exit")
	flag.Usage = usage
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return exitOK
	}
	if flag.NArg() < 1 {
		usage()
		return exitUsage
	}
	c := &serve.Client{
		Base:    strings.TrimRight(*addr, "/"),
		Retries: *retries,
		Logf:    log.Printf,
	}
	for _, e := range strings.Split(*endpoints, ",") {
		if e = strings.TrimSpace(e); e != "" {
			c.Endpoints = append(c.Endpoints, e)
		}
	}
	if *quiet {
		c.Logf = nil
	}
	var err error
	switch cmd := flag.Arg(0); cmd {
	case "submit":
		err = submit(c, flag.Args()[1:])
	case "status":
		err = status(c, flag.Args()[1:])
	case "watch":
		err = watch(c, flag.Args()[1:])
	case "result":
		err = result(c, flag.Args()[1:])
	case "health":
		err = health(c)
	default:
		log.Printf("unknown command %q", cmd)
		usage()
		return exitUsage
	}
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, serve.ErrQueueFull):
		log.Print(err)
		return exitQueueFull
	case errors.Is(err, serve.ErrJobFailed):
		log.Print(err)
		return exitJobFailed
	default:
		log.Print(err)
		return exitErr
	}
}

func printJSON(v any) {
	out, _ := json.MarshalIndent(v, "", "  ")
	fmt.Println(string(out))
}

func submit(c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		bench   = fs.String("bench", "radix", "benchmark name, or a synth:... pseudo-benchmark")
		net     = fs.String("net", "", "network: pure, bcast, atac, atac+ (default atac+)")
		cores   = fs.Int("cores", 0, "total cores (default: daemon default)")
		sharers = fs.Int("sharers", 0, "hardware sharer pointers (0 = default)")
		proto   = fs.String("coherence", "", "coherence protocol: ackwise, dirkb")
		flit    = fs.Int("flit", 0, "flit width in bits (0 = default)")
		rthres  = fs.Int("rthres", 0, "distance routing threshold (0 = auto)")
		techN   = fs.String("tech", "", "electrical technology scenario (empty = daemon default)")
		opticsN = fs.String("optics", "", "optical technology scenario (empty = daemon default)")
		seed    = fs.Int64("seed", 0, "simulation seed (0 = daemon default)")
		wait    = fs.Bool("wait", false, "stream progress to stderr and print the result JSON")
	)
	fs.Parse(args)
	spec := serve.JobSpec{
		Bench: *bench,
		Geometry: experiments.Geometry{
			Net: *net, Cores: *cores, Sharers: *sharers, Coherence: *proto,
			FlitBits: *flit, RThres: *rthres, Seed: *seed,
			Tech: *techN, Optics: *opticsN,
		},
	}
	st, err := c.Submit(spec)
	if err != nil {
		return err
	}
	if !*wait {
		printJSON(st)
		return nil
	}
	// A job can be lost mid--wait if the node executing it dies before
	// any replica holds the result. Submission is idempotent (the run
	// hash is the identity), so the recovery is to resubmit the same spec
	// — a surviving node serves the cached result or reruns it once.
	for attempt := 0; ; attempt++ {
		fmt.Fprintf(os.Stderr, "job %s (%s on %s): %s\n", st.ID, st.Bench, st.Config, st.State)
		// The watch stream survives daemon restarts (Last-Event-ID
		// reconnection); if it still dies, fall through to the result poll,
		// which retries independently — the job is durable server-side.
		_, werr := c.Watch(st.ID, os.Stderr)
		if werr != nil && !serve.IsTransient(werr) && !errors.Is(werr, serve.ErrJobLost) {
			return werr
		}
		body, rerr := c.Result(st.ID, true)
		if rerr == nil {
			_, err = os.Stdout.Write(body)
			return err
		}
		if !errors.Is(rerr, serve.ErrJobLost) || attempt >= 2 {
			return rerr
		}
		fmt.Fprintf(os.Stderr, "job %s lost (its node died); resubmitting the spec\n", st.ID)
		if st, err = c.Submit(spec); err != nil {
			return err
		}
	}
}

func status(c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	id := fs.String("id", "", "job ID (empty: list all jobs)")
	fs.Parse(args)
	if *id == "" {
		all, err := c.List()
		if err != nil {
			return err
		}
		printJSON(all)
		return nil
	}
	st, err := c.Status(*id)
	if err != nil {
		return err
	}
	printJSON(st)
	return nil
}

func watch(c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	id := fs.String("id", "", "job ID")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("watch: missing -id")
	}
	state, err := c.Watch(*id, os.Stdout)
	if err != nil {
		return err
	}
	if state == serve.StateFailed {
		return fmt.Errorf("%w (see stream for details)", serve.ErrJobFailed)
	}
	return nil
}

func result(c *serve.Client, args []string) error {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	id := fs.String("id", "", "job ID")
	wait := fs.Bool("wait", false, "poll until the job completes")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("result: missing -id")
	}
	body, err := c.Result(*id, *wait)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(body)
	return err
}

func health(c *serve.Client) error {
	h, _, err := c.Health()
	if err != nil {
		return err
	}
	printJSON(h)
	return nil
}
