// Command atacctl is the client for the atacd simulation daemon.
//
// Usage:
//
//	atacctl [-addr http://localhost:8347] <command> [flags]
//
//	submit  -bench radix -cores 16 [-net atac+] [-wait]   submit a job
//	status  [-id ID]                                      one job, or all
//	watch   -id ID                                        stream progress (SSE)
//	result  -id ID [-wait]                                fetch the result JSON
//	health                                                daemon /healthz
//
// submit -wait is the one-shot form: submit, stream progress to stderr,
// print the result JSON to stdout — the curlable equivalent of running
// atacsim remotely.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atacctl: ")
	os.Exit(run())
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: atacctl [-addr URL] {submit|status|watch|result|health} [flags]")
	flag.PrintDefaults()
}

func run() int {
	addr := flag.String("addr", "http://localhost:8347", "atacd base URL")
	showVer := flag.Bool("version", false, "print the build version and exit")
	flag.Usage = usage
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return 0
	}
	if flag.NArg() < 1 {
		usage()
		return 2
	}
	c := &client{base: strings.TrimRight(*addr, "/")}
	var err error
	switch cmd := flag.Arg(0); cmd {
	case "submit":
		err = c.submit(flag.Args()[1:])
	case "status":
		err = c.status(flag.Args()[1:])
	case "watch":
		err = c.watch(flag.Args()[1:])
	case "result":
		err = c.result(flag.Args()[1:])
	case "health":
		err = c.health()
	default:
		log.Printf("unknown command %q", cmd)
		usage()
		return 2
	}
	if err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

type client struct{ base string }

// apiErr extracts the server's error message from a non-2xx response.
func apiErr(resp *http.Response, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

func (c *client) getJSON(path string, out any) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return apiErr(resp, body)
	}
	return json.Unmarshal(body, out)
}

func printJSON(v any) {
	out, _ := json.MarshalIndent(v, "", "  ")
	fmt.Println(string(out))
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		bench   = fs.String("bench", "radix", "benchmark name, or a synth:... pseudo-benchmark")
		net     = fs.String("net", "", "network: pure, bcast, atac, atac+ (default atac+)")
		cores   = fs.Int("cores", 0, "total cores (default: daemon default)")
		sharers = fs.Int("sharers", 0, "hardware sharer pointers (0 = default)")
		proto   = fs.String("coherence", "", "coherence protocol: ackwise, dirkb")
		flit    = fs.Int("flit", 0, "flit width in bits (0 = default)")
		rthres  = fs.Int("rthres", 0, "distance routing threshold (0 = auto)")
		seed    = fs.Int64("seed", 0, "simulation seed (0 = daemon default)")
		wait    = fs.Bool("wait", false, "stream progress to stderr and print the result JSON")
	)
	fs.Parse(args)
	spec := serve.JobSpec{
		Bench: *bench,
		Geometry: experiments.Geometry{
			Net: *net, Cores: *cores, Sharers: *sharers, Coherence: *proto,
			FlitBits: *flit, RThres: *rthres, Seed: *seed,
		},
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			return fmt.Errorf("%w (Retry-After: %ss)", apiErr(resp, raw), ra)
		}
		return apiErr(resp, raw)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return err
	}
	if !*wait {
		printJSON(st)
		return nil
	}
	fmt.Fprintf(os.Stderr, "job %s (%s on %s): %s\n", st.ID, st.Bench, st.Config, st.State)
	if err := c.stream(st.ID, os.Stderr); err != nil {
		return err
	}
	return c.fetchResult(st.ID, true)
}

func (c *client) status(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	id := fs.String("id", "", "job ID (empty: list all jobs)")
	fs.Parse(args)
	if *id == "" {
		var all []serve.JobStatus
		if err := c.getJSON("/v1/jobs", &all); err != nil {
			return err
		}
		printJSON(all)
		return nil
	}
	var st serve.JobStatus
	if err := c.getJSON("/v1/jobs/"+*id, &st); err != nil {
		return err
	}
	printJSON(st)
	return nil
}

func (c *client) watch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	id := fs.String("id", "", "job ID")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("watch: missing -id")
	}
	return c.stream(*id, os.Stdout)
}

// stream follows the job's SSE feed, writing one line per event, until
// the server ends the stream (job terminal) or the connection drops.
func (c *client) stream(id string, w io.Writer) error {
	resp, err := http.Get(c.base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(resp.Body)
		return apiErr(resp, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			fmt.Fprintf(w, "%-12s %s\n", event, strings.TrimPrefix(line, "data: "))
		}
	}
	return sc.Err()
}

func (c *client) result(args []string) error {
	fs := flag.NewFlagSet("result", flag.ExitOnError)
	id := fs.String("id", "", "job ID")
	wait := fs.Bool("wait", false, "poll until the job completes")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("result: missing -id")
	}
	return c.fetchResult(*id, *wait)
}

// fetchResult prints the completed result JSON verbatim (so two clients
// fetching the same job can diff bytes). With wait, 202 responses poll.
func (c *client) fetchResult(id string, wait bool) error {
	for {
		resp, err := http.Get(c.base + "/v1/jobs/" + id + "/result")
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			os.Stdout.Write(body)
			return nil
		case resp.StatusCode == http.StatusAccepted && wait:
			time.Sleep(200 * time.Millisecond)
		default:
			return apiErr(resp, body)
		}
	}
}

func (c *client) health() error {
	// A draining daemon answers 503 with a valid Health body; show it
	// rather than erroring.
	resp, err := http.Get(c.base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var h serve.Health
	if err := json.Unmarshal(body, &h); err != nil {
		return apiErr(resp, body)
	}
	printJSON(h)
	return nil
}
