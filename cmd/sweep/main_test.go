package main

import (
	"testing"

	"repro/internal/experiments"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("16, 32,64 ,128")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{16, 32, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
	if _, err := parseInts("1,x,3"); err == nil {
		t.Error("bad value accepted")
	}
	if vals, err := parseInts(" , ,"); err != nil || len(vals) != 0 {
		t.Errorf("empty fields: %v %v", vals, err)
	}
}

func TestBaseConfig(t *testing.T) {
	for _, net := range []string{"pure", "bcast", "atac", "atac+"} {
		cfg, err := experiments.BuildConfig(experiments.Geometry{Net: net, Cores: 64, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", net, err)
		}
		if cfg.Caches.DirSlices != cfg.Clusters() {
			t.Errorf("%s: slices mismatch", net)
		}
	}
	if _, err := experiments.BuildConfig(experiments.Geometry{Net: "ring", Cores: 64, Seed: 1}); err == nil {
		t.Error("unknown network accepted")
	}
	// The sweep front end threads -tech/-optics through the same Geometry.
	cfg, err := experiments.BuildConfig(experiments.Geometry{Net: "atac+", Cores: 64, Seed: 1, Tech: " 7NM ", Optics: "optimistic"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tech != "7nm" || cfg.Optics != "optimistic" {
		t.Errorf("scenario not threaded: %s/%s", cfg.Tech, cfg.Optics)
	}
}
