package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("16, 32,64 ,128")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{16, 32, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
	if _, err := parseInts("1,x,3"); err == nil {
		t.Error("bad value accepted")
	}
	if vals, err := parseInts(" , ,"); err != nil || len(vals) != 0 {
		t.Errorf("empty fields: %v %v", vals, err)
	}
}

func TestBaseConfig(t *testing.T) {
	for _, net := range []string{"pure", "bcast", "atac", "atac+"} {
		cfg, err := baseConfig(net, 64, 1)
		if err != nil {
			t.Fatalf("%s: %v", net, err)
		}
		if cfg.Caches.DirSlices != cfg.Clusters() {
			t.Errorf("%s: slices mismatch", net)
		}
	}
	if _, err := baseConfig("ring", 64, 1); err == nil {
		t.Error("unknown network accepted")
	}
}
