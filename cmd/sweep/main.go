// Command sweep runs one-dimensional parameter sweeps of the full system
// and emits CSV: runtime, energy, and E-D product per swept value. It
// generalizes the fixed sweeps behind Figs 9, 11, 13, 15 and 16.
//
// Usage:
//
//	sweep -param flit   -values 16,32,64,128,256 -bench radix
//	sweep -param rthres -values 2,4,8,12         -bench ocean_contig
//	sweep -param sharers -values 4,8,16,32       -bench barnes
//	sweep -param load -pattern tornado -values 2,5,10,20   (load in % — network only)
//
// System sweeps share the campaign engine's resilience layer with
// cmd/figures: runs are journaled next to the cache, failed points emit a
// "# value N failed: ..." comment row instead of killing the sweep, and a
// SIGINT/SIGTERM drains in-flight runs before emitting what completed.
// Exit codes: 0 complete, 1 fatal, 3 some points failed, 4 interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/noc"
	"repro/internal/photonics"
	"repro/internal/sim"
	"repro/internal/tech"
	"repro/internal/traffic"
	"repro/internal/version"
)

// sweepOpts carries the campaign-engine knobs of a system sweep.
type sweepOpts struct {
	jobs       int
	shards     int
	cacheDir   string
	noCache    bool
	runTimeout time.Duration
	retries    int
	grace      time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	os.Exit(run())
}

func run() int {
	var (
		param    = flag.String("param", "flit", "swept parameter: flit, rthres, sharers, load")
		values   = flag.String("values", "", "comma-separated integer values")
		bench    = flag.String("bench", "radix", "benchmark (system sweeps)")
		net      = flag.String("net", "atac+", "network: pure, bcast, atac, atac+")
		cores    = flag.Int("cores", 64, "total cores")
		pattern  = flag.String("pattern", "uniform", "traffic pattern (load sweeps): "+strings.Join(traffic.Patterns(), ", "))
		techN    = flag.String("tech", "", "electrical technology scenario: "+strings.Join(tech.Scenarios(), ", ")+" (default 11nm)")
		opticsN  = flag.String("optics", "", "optical technology scenario: "+strings.Join(photonics.Variants(), ", ")+" (default baseline)")
		seed     = flag.Int64("seed", 42, "seed")
		jobsN    = flag.Int("jobs", 0, "max concurrent simulations (0: REPRO_JOBS env, else GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "parallel PDES shards per simulation (0: REPRO_SHARDS env, else 1 = serial; load sweeps are synthetic and always serial)")
		cacheDir = flag.String("cache-dir", "", "persistent result cache directory (default: REPRO_CACHE env, else disabled)")
		noCache  = flag.Bool("no-cache", false, "disable the persistent result cache")

		runTimeout = flag.Duration("run-timeout", 0, "per-run wall-clock deadline (0 = none)")
		retries    = flag.Int("retries", 2, "extra attempts for transiently failed runs (panics, deadlines)")
		grace      = flag.Duration("grace", 15*time.Second, "drain window after SIGINT/SIGTERM before in-flight runs are cancelled")
		showVer    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return 0
	}
	vals, err := parseInts(*values)
	if err != nil {
		log.Print(err)
		return experiments.ExitFatal
	}
	if len(vals) == 0 {
		log.Print("no -values given")
		return experiments.ExitFatal
	}

	g := experiments.Geometry{Net: *net, Cores: *cores, Seed: *seed, Tech: *techN, Optics: *opticsN}
	switch *param {
	case "load":
		return sweepLoad(*pattern, g, vals)
	case "flit", "rthres", "sharers":
		return sweepSystem(*param, *bench, g, vals, sweepOpts{
			jobs: *jobsN, shards: *shards, cacheDir: *cacheDir, noCache: *noCache,
			runTimeout: *runTimeout, retries: *retries, grace: *grace,
		})
	default:
		log.Printf("unknown -param %q", *param)
		return experiments.ExitFatal
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func sweepSystem(param, bench string, g experiments.Geometry, vals []int, o sweepOpts) int {
	// Build every swept configuration first, then hand the whole set to the
	// campaign engine: points run concurrently (up to -jobs) and repeat
	// invocations hit the persistent cache. Every point goes through
	// experiments.BuildConfig, so the -tech/-optics scenario lands in the
	// run keys (and energy models) exactly as it does in the other front
	// ends.
	cfgs := make([]config.Config, 0, len(vals))
	specs := make([]experiments.RunSpec, 0, len(vals))
	for _, v := range vals {
		cfg, err := experiments.BuildConfig(g)
		if err != nil {
			log.Print(err)
			return experiments.ExitFatal
		}
		switch param {
		case "flit":
			cfg.Network.FlitBits = v
		case "rthres":
			cfg.Network.Routing = config.DistanceRouting
			cfg.Network.RThres = v
		case "sharers":
			cfg.Coherence.Sharers = v
		}
		if err := cfg.Validate(); err != nil {
			log.Printf("value %d: %v", v, err)
			return experiments.ExitFatal
		}
		cfgs = append(cfgs, cfg)
		specs = append(specs, experiments.RunSpec{Cfg: cfg, Bench: bench})
	}

	r := experiments.NewRunner(experiments.Options{Cores: g.Cores, Scale: 1, Seed: g.Seed,
		Tech: g.Tech, Optics: g.Optics})
	r.Jobs = o.jobs
	r.Shards = o.shards
	r.Retries = o.retries
	r.RunTimeout = o.runTimeout
	r.RecallFailures = true
	if o.noCache {
		r.Cache = nil
	} else if o.cacheDir != "" {
		c, err := experiments.OpenCache(o.cacheDir)
		if err != nil {
			log.Print(err)
			return experiments.ExitFatal
		}
		r.Cache = c
	}
	if r.Cache != nil {
		r.Cache.Log = func(s string) { log.Print(s) }
		j, err := experiments.OpenJournal(r.Cache.JournalPath())
		if err != nil {
			log.Printf("warning: %v (continuing without journal)", err)
		} else {
			r.Journal = j
			defer func() {
				if err := j.Close(); err != nil {
					log.Printf("warning: journal close: %v", err)
				}
			}()
		}
	}
	ctx, stopSignals := r.InstallSignalHandler(o.grace, log.Printf)
	defer stopSignals()

	// Errors are surfaced per-point below, as comment rows in the CSV; an
	// entirely failed sweep still emits its header and comments.
	_ = r.RunAll(ctx, specs)

	fmt.Printf("%s,cycles,instructions,energy_mJ,edp_uJs\n", param)
	for i, v := range vals {
		res, err := r.Run(cfgs[i], bench)
		if err != nil {
			fmt.Printf("# value %d failed: %v\n", v, err)
			continue
		}
		m, err := energy.Build(cfgs[i])
		if err != nil {
			log.Print(err)
			return experiments.ExitFatal
		}
		bd := energy.Combine(m, res)
		fmt.Printf("%d,%d,%d,%.4f,%.4f\n", v, res.Cycles, res.Instructions,
			bd.Total()*1e3, energy.EDP(m, res)*1e6)
	}
	fmt.Fprintln(os.Stderr, "done")
	return r.ExitCode()
}

func sweepLoad(pattern string, g experiments.Geometry, percents []int) int {
	g.Net = "atac+"
	cfg, err := experiments.BuildConfig(g)
	if err != nil {
		log.Print(err)
		return experiments.ExitFatal
	}
	seed := g.Seed
	p, err := traffic.ByName(pattern, cfg.MeshDim(), 0.001)
	if err != nil {
		log.Print(err)
		return experiments.ExitFatal
	}
	fmt.Println("load_pct,injected,delivered,mean_lat,p50,p95,p99,max")
	for _, pc := range percents {
		var k sim.Kernel
		a := noc.NewAtac(&k, &cfg)
		res := traffic.Drive(&k, a, cfg.Cores, p, float64(pc)/100, cfg.Network.FlitBits,
			2000, 6000, 20000, seed)
		fmt.Printf("%d,%d,%d,%.2f,%d,%d,%d,%d\n", pc, res.Injected, res.Delivered,
			res.Latency.Mean(), res.Latency.Percentile(50), res.Latency.Percentile(95),
			res.Latency.Percentile(99), res.Latency.Max())
	}
	fmt.Fprintln(os.Stderr, "done")
	return experiments.ExitOK
}
