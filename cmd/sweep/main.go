// Command sweep runs one-dimensional parameter sweeps of the full system
// and emits CSV: runtime, energy, and E-D product per swept value. It
// generalizes the fixed sweeps behind Figs 9, 11, 13, 15 and 16.
//
// Usage:
//
//	sweep -param flit   -values 16,32,64,128,256 -bench radix
//	sweep -param rthres -values 2,4,8,12         -bench ocean_contig
//	sweep -param sharers -values 4,8,16,32       -bench barnes
//	sweep -param load -pattern tornado -values 2,5,10,20   (load in % — network only)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	var (
		param    = flag.String("param", "flit", "swept parameter: flit, rthres, sharers, load")
		values   = flag.String("values", "", "comma-separated integer values")
		bench    = flag.String("bench", "radix", "benchmark (system sweeps)")
		net      = flag.String("net", "atac+", "network: pure, bcast, atac, atac+")
		cores    = flag.Int("cores", 64, "total cores")
		pattern  = flag.String("pattern", "uniform", "traffic pattern (load sweeps): "+strings.Join(traffic.Patterns(), ", "))
		seed     = flag.Int64("seed", 42, "seed")
		jobsN    = flag.Int("jobs", 0, "max concurrent simulations (0: REPRO_JOBS env, else GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "persistent result cache directory (default: REPRO_CACHE env, else disabled)")
		noCache  = flag.Bool("no-cache", false, "disable the persistent result cache")
	)
	flag.Parse()

	vals, err := parseInts(*values)
	if err != nil {
		log.Fatal(err)
	}
	if len(vals) == 0 {
		log.Fatal("no -values given")
	}

	switch *param {
	case "load":
		sweepLoad(*pattern, *cores, vals, *seed)
	case "flit", "rthres", "sharers":
		sweepSystem(*param, *bench, *net, *cores, vals, *seed, *jobsN, *cacheDir, *noCache)
	default:
		log.Fatalf("unknown -param %q", *param)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func baseConfig(net string, cores int, seed int64) (config.Config, error) {
	var kind config.NetworkKind
	switch strings.ToLower(net) {
	case "pure":
		kind = config.EMeshPure
	case "bcast":
		kind = config.EMeshBCast
	case "atac":
		kind = config.ATAC
	case "atac+":
		kind = config.ATACPlus
	default:
		return config.Config{}, fmt.Errorf("unknown network %q", net)
	}
	cfg := config.Default().WithNetwork(kind)
	cfg.Cores = cores
	cfg.Seed = seed
	if cores < 64 {
		cfg.ClusterDim = 2
	}
	cfg.Caches.DirSlices = cfg.Clusters()
	cfg.Memory.Controllers = cfg.Clusters()
	if cores < 1024 {
		cfg.Network.RThres = cfg.MeshDim() / 2
		if cfg.Network.RThres < 2 {
			cfg.Network.RThres = 2
		}
	}
	return cfg, cfg.Validate()
}

func sweepSystem(param, bench, net string, cores int, vals []int, seed int64, jobs int, cacheDir string, noCache bool) {
	// Build every swept configuration first, then hand the whole set to the
	// campaign engine: points run concurrently (up to -jobs) and repeat
	// invocations hit the persistent cache.
	cfgs := make([]config.Config, 0, len(vals))
	specs := make([]experiments.RunSpec, 0, len(vals))
	for _, v := range vals {
		cfg, err := baseConfig(net, cores, seed)
		if err != nil {
			log.Fatal(err)
		}
		switch param {
		case "flit":
			cfg.Network.FlitBits = v
		case "rthres":
			cfg.Network.Routing = config.DistanceRouting
			cfg.Network.RThres = v
		case "sharers":
			cfg.Coherence.Sharers = v
		}
		if err := cfg.Validate(); err != nil {
			log.Fatalf("value %d: %v", v, err)
		}
		cfgs = append(cfgs, cfg)
		specs = append(specs, experiments.RunSpec{Cfg: cfg, Bench: bench})
	}

	r := experiments.NewRunner(experiments.Options{Cores: cores, Scale: 1, Seed: seed})
	r.Jobs = jobs
	if noCache {
		r.Cache = nil
	} else if cacheDir != "" {
		c, err := experiments.OpenCache(cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		r.Cache = c
	}
	if err := r.RunAll(specs); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s,cycles,instructions,energy_mJ,edp_uJs\n", param)
	for i, v := range vals {
		res, err := r.Run(cfgs[i], bench)
		if err != nil {
			log.Fatalf("value %d: %v", v, err)
		}
		m, err := energy.Build(cfgs[i])
		if err != nil {
			log.Fatal(err)
		}
		bd := energy.Combine(m, res)
		fmt.Printf("%d,%d,%d,%.4f,%.4f\n", v, res.Cycles, res.Instructions,
			bd.Total()*1e3, energy.EDP(m, res)*1e6)
	}
	fmt.Fprintln(os.Stderr, "done")
}

func sweepLoad(pattern string, cores int, percents []int, seed int64) {
	cfg, err := baseConfig("atac+", cores, seed)
	if err != nil {
		log.Fatal(err)
	}
	p, err := traffic.ByName(pattern, cfg.MeshDim(), 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("load_pct,injected,delivered,mean_lat,p50,p95,p99,max")
	for _, pc := range percents {
		var k sim.Kernel
		a := noc.NewAtac(&k, &cfg)
		res := traffic.Drive(&k, a, cfg.Cores, p, float64(pc)/100, cfg.Network.FlitBits,
			2000, 6000, 20000, seed)
		fmt.Printf("%d,%d,%d,%.2f,%d,%d,%d,%d\n", pc, res.Injected, res.Delivered,
			res.Latency.Mean(), res.Latency.Percentile(50), res.Latency.Percentile(95),
			res.Latency.Percentile(99), res.Latency.Max())
	}
	fmt.Fprintln(os.Stderr, "done")
}
