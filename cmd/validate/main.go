// Command validate runs the full correctness matrix: every workload
// (including the extension kernels) on every network architecture and both
// coherence protocols, each validated against its sequential reference.
// It is the repository's end-to-end health check.
//
// Usage:
//
//	validate              # 16-core matrix (~1 min)
//	validate -cores 64    # larger machines, same matrix
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/config"
	"repro/internal/system"
	"repro/internal/version"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")

	var (
		cores   = flag.Int("cores", 16, "total cores")
		seed    = flag.Int64("seed", 42, "seed")
		scale   = flag.Int("scale", 1, "workload scale")
		showVer = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return
	}

	networks := []config.NetworkKind{config.EMeshPure, config.EMeshBCast, config.ATAC, config.ATACPlus}
	protocols := []config.CoherenceKind{config.ACKwise, config.DirKB}

	var pass, fail int
	start := time.Now()
	for _, spec := range workload.ExtendedCatalog(*cores, *seed, *scale) {
		for _, nk := range networks {
			for _, ck := range protocols {
				cfg := config.Default().WithNetwork(nk)
				cfg.Cores = *cores
				cfg.Seed = *seed
				if *cores < 64 {
					cfg.ClusterDim = 2
				}
				cfg.Caches.DirSlices = cfg.Clusters()
				cfg.Memory.Controllers = cfg.Clusters()
				cfg.Coherence.Kind = ck
				if *cores < 1024 {
					cfg.Network.RThres = max(2, cfg.MeshDim()/2)
				}
				if err := cfg.Validate(); err != nil {
					log.Fatal(err)
				}
				sys, err := system.New(cfg)
				if err != nil {
					log.Fatal(err)
				}
				res, err := sys.Run(spec, 500_000_000)
				status := "PASS"
				if err != nil {
					status = "FAIL: " + err.Error()
					fail++
				} else {
					pass++
				}
				fmt.Printf("%-16s %-12v %-8v cycles=%-9d %s\n",
					spec.Name, nk, ck, res.Cycles, status)
			}
		}
	}
	fmt.Printf("\n%d passed, %d failed in %v\n", pass, fail, time.Since(start).Round(time.Second))
	if fail > 0 {
		os.Exit(1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
