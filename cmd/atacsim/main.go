// Command atacsim runs one benchmark on one architecture and prints the
// performance and energy results.
//
// Usage:
//
//	atacsim -bench radix -net atac+ -cores 64 -scale 1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/photonics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/system"
	"repro/internal/tech"
	"repro/internal/trace"
	"repro/internal/version"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atacsim: ")

	var (
		bench   = flag.String("bench", "radix", "benchmark: dynamic_graph, radix, barnes, fmm, ocean_contig, lu_contig, ocean_non_contig, lu_non_contig")
		net     = flag.String("net", "atac+", "network: pure, bcast, atac, atac+, corona, hybrid")
		cores   = flag.Int("cores", 64, "total cores (perfect square, multiple of cluster size)")
		scale   = flag.Int("scale", 1, "workload scale factor")
		sharers = flag.Int("sharers", 4, "ACKwise/DirKB hardware sharer pointers")
		proto   = flag.String("coherence", "ackwise", "coherence protocol: ackwise, dirkb")
		flit    = flag.Int("flit", 64, "flit width in bits")
		rthres  = flag.Int("rthres", 0, "distance routing threshold (0 = auto)")
		hybridR = flag.Int("hybrid-radius", 0, "hybrid network: photonic-gateway radius in clusters (0 = 1, a gateway per cluster)")
		techN   = flag.String("tech", "", "electrical technology scenario: "+strings.Join(tech.Scenarios(), ", ")+" (default 11nm)")
		opticsN = flag.String("optics", "", "optical technology scenario: "+strings.Join(photonics.Variants(), ", ")+" (default baseline)")
		seed    = flag.Int64("seed", 42, "simulation seed")
		shards  = flag.Int("shards", 0, "parallel PDES shards, one per cluster-row slab (0: REPRO_SHARDS env, else 1 = serial; results are bit-identical either way)")
		heat    = flag.Bool("heatmap", false, "print the mesh congestion heatmap")
		traceN  = flag.Int("trace", 0, "dump the last N protocol events after the run")
		cfgPath = flag.String("config", "", "load the system configuration from this JSON file (overrides the geometry flags)")
		dumpCfg = flag.String("dumpconfig", "", "write the effective configuration as JSON to this file and exit")

		// Observability (internal/metrics, internal/trace).
		metricsDir = flag.String("metrics-dir", "", "write per-epoch metrics.csv and metrics.json into this directory")
		epochN     = flag.Int("epoch", 10000, "metrics epoch length in cycles")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON timeline (chrome://tracing, Perfetto) to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")

		// Fault injection and simulation health (internal/fault).
		oBER      = flag.Float64("ber", 0, "optical per-bit error rate on the ONet (0 = perfect)")
		mBER      = flag.Float64("meshber", 0, "per-bit error rate on electrical mesh links (0 = perfect)")
		driftP    = flag.Int("drift-period", 0, "thermal ring-drift episode period in cycles (0 = no drift)")
		driftD    = flag.Int("drift-duty", 0, "cycles of each drift period spent drifted")
		driftM    = flag.Float64("drift-mult", 0, "BER multiplier while a drift episode is active")
		droop     = flag.Float64("droop", 0, "laser droop: fractional optical BER growth per Mcycle")
		retries   = flag.Int("retries", 0, "max retransmissions per flit/packet (0 = default)")
		degrade   = flag.Float64("degrade", 0, "observed error rate above which an optical channel degrades to the ENet (0 = never)")
		faultSeed = flag.Int64("faultseed", 0, "fault stream seed (0 = derive from -seed)")
		watchdog  = flag.Int("watchdog", 0, "progress watchdog sampling interval in cycles (0 = off)")

		runTimeout = flag.Duration("run-timeout", 0, "wall-clock deadline for the run (0 = none); Ctrl-C also cancels cleanly")
		showVer    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return
	}
	if *bench == "list" {
		for _, n := range workloadNames() {
			fmt.Println(n)
		}
		return
	}

	var cfg config.Config
	var err error
	if *cfgPath != "" {
		cfg, err = config.LoadFile(*cfgPath)
	} else {
		cfg, err = experiments.BuildConfig(experiments.Geometry{
			Net: *net, Cores: *cores, Sharers: *sharers, Coherence: *proto,
			FlitBits: *flit, RThres: *rthres, Seed: *seed,
			HybridRadius: *hybridR,
			Tech:         *techN, Optics: *opticsN,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	if *oBER > 0 || *mBER > 0 {
		cfg.Fault.Enabled = true
		cfg.Fault.OpticalBER = *oBER
		cfg.Fault.MeshBER = *mBER
		cfg.Fault.DriftPeriod = *driftP
		cfg.Fault.DriftDuty = *driftD
		cfg.Fault.DriftBERMult = *driftM
		cfg.Fault.LaserDroopPerMCycle = *droop
		cfg.Fault.MaxRetries = *retries
		cfg.Fault.DegradeThreshold = *degrade
		cfg.Fault.Seed = *faultSeed
	}
	if *watchdog > 0 {
		cfg.Fault.WatchdogInterval = *watchdog
		if cfg.Fault.WatchdogStalls == 0 {
			cfg.Fault.WatchdogStalls = 3
		}
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	if *dumpCfg != "" {
		if err := cfg.SaveFile(*dumpCfg); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *dumpCfg)
		return
	}

	if *pprofAddr != "" {
		go func() { log.Println(http.ListenAndServe(*pprofAddr, nil)) }()
	}

	nsh := *shards
	if nsh <= 0 {
		nsh = experiments.DefaultShards()
	}
	if nsh > 1 && (*traceN > 0 || *traceOut != "") {
		// The protocol trace ring records the coherence layer's global event
		// order from concurrent shard goroutines without synchronization;
		// only the serial kernel can feed it coherently.
		log.Println("protocol tracing forces serial execution; ignoring -shards")
		nsh = 1
	}
	sys, err := system.NewSharded(cfg, nsh)
	if err != nil {
		log.Fatal(err)
	}
	if nsh > 1 && sys.Shards != nsh {
		if cfg.Fault.Enabled {
			// The injector draws from one global RNG stream whose draw order
			// no conservative window schedule can reproduce.
			log.Println("fault injection forces serial execution; ignoring -shards")
		} else {
			log.Printf("using %d shards (%d requested; shards must divide the %d cluster rows)",
				sys.Shards, nsh, cfg.MeshDim()/cfg.ClusterDim)
		}
	}
	spec, err := system.WorkloadFor(cfg, *bench, *scale)
	if err != nil {
		log.Fatal(err)
	}
	var ring *trace.Ring
	if n := *traceN; n > 0 || *traceOut != "" {
		if n <= 0 {
			n = 4096 // timeline export only: retain a useful tail
		}
		ring = trace.New(n)
		sys.Coh.Tracer = ring
	}
	var col *metrics.Collector
	if *metricsDir != "" || *traceOut != "" {
		col = metrics.New(sys.Clock(), sim.Time(*epochN))
		sys.AttachMetrics(col)
	}
	// SIGINT/SIGTERM (and -run-timeout) cancel the simulation cooperatively
	// at the kernel's next poll, so an interrupted run still flushes its
	// observability sinks below instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *runTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, *runTimeout, fmt.Errorf("run deadline %v exceeded", *runTimeout))
		defer cancel()
	}
	res, err := sys.RunContext(ctx, spec, 0)
	// Flush the observability sinks before acting on the run error: the
	// time series of a wedged or fault-aborted run is exactly what the
	// investigation needs.
	label := fmt.Sprintf("%s on %v", *bench, cfg.Network.Kind)
	if werr := writeMetrics(*metricsDir, *traceOut, label, col, ring); werr != nil {
		log.Fatal(werr)
	}
	if err != nil {
		log.Fatal(err)
	}
	m, err := energy.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bd := energy.Combine(m, res)

	fmt.Printf("benchmark        %s on %v (%d cores, %v%d)\n",
		res.Benchmark, cfg.Network.Kind, cfg.Cores, cfg.Coherence.Kind, cfg.Coherence.Sharers)
	fmt.Printf("technology       %s electronics, %s optics\n",
		tech.Canonical(cfg.Tech), photonics.Canonical(cfg.Optics))
	fmt.Printf("completion time  %d cycles (%.3f ms at 1 GHz)\n", res.Cycles, float64(res.Cycles)*1e-6)
	fmt.Printf("instructions     %d (IPC %.3f)\n", res.Instructions, res.IPC())
	fmt.Printf("offered load     %.4f flits/cycle/core\n", res.OfferedLoad())
	fmt.Printf("broadcast recv   %.1f%% of deliveries\n", res.BroadcastRecvFraction()*100)
	fmt.Printf("L1D misses       %d (of %d accesses)\n", res.Coh.L1DMisses, res.Coh.L1DReads+res.Coh.L1DWrites)
	fmt.Printf("L2 misses        %d; inv broadcasts %d; inv unicasts %d\n",
		res.Coh.L2Misses, res.Coh.InvBroadcasts, res.Coh.InvUnicasts)
	if cfg.Network.Kind.IsOptical() {
		fmt.Printf("SWMR link        %.1f%% utilized, %.1f unicasts/broadcast\n",
			res.LinkUtilization*100, res.UnicastsPerBcast)
	}
	fmt.Printf("energy           %v\n", bd)
	fmt.Printf("E-D product      %.6g J·s\n", energy.EDP(m, res))
	if res.Net.FaultEvents() {
		n := res.Net
		fmt.Printf("faults           mesh: %d errors, %d retx flits, %d forced through\n",
			n.MeshFlitErrors, n.MeshRetxFlits, n.MeshRetriesExhausted)
		fmt.Printf("                 optical: %d errors, %d retx pkts (%d flits), %d forced through\n",
			n.OpticalFlitErrors, n.OpticalRetxPkts, n.OpticalRetxFlits, n.OpticalRetriesExhausted)
		fmt.Printf("                 degraded channels %d; rerouted %d msgs (%d flits)\n",
			n.DegradedChannels, n.ReroutedMsgs, n.ReroutedFlits)
		if sys.Atac != nil {
			if cl := sys.Atac.DegradedClusters(); len(cl) > 0 {
				fmt.Printf("                 degraded clusters %v\n", cl)
			}
		}
		fmt.Printf("                 resilience overhead %.3g J\n", energy.ResilienceOverheadJ(m, res))
	}

	if *heat {
		var mesh interface{ RouterFlits() []uint64 }
		if sys.Atac != nil {
			mesh = sys.Atac.ENet()
		} else if mm, ok := sys.Net.(interface{ RouterFlits() []uint64 }); ok {
			mesh = mm
		}
		if mesh != nil {
			dim := cfg.MeshDim()
			hm := stats.NewHeatmap(dim)
			for i, v := range mesh.RouterFlits() {
				hm.Add(i%dim, i/dim, v)
			}
			x, y, v := hm.Hottest()
			fmt.Printf("\nmesh congestion heatmap (hottest router (%d,%d): %d flits):\n%s", x, y, v, hm.Render())
		}
	}
	if ring != nil && *traceN > 0 {
		fmt.Printf("\nlast %d of %d protocol events:\n%s", len(ring.Entries()), ring.Total(), ring.Dump())
	}
}

// writeMetrics flushes the metrics and timeline sinks: per-epoch CSV and
// JSON series into dir, and a Chrome trace_event timeline (with the
// protocol ring's retained events as instant markers) to traceOut.
func writeMetrics(dir, traceOut, label string, col *metrics.Collector, ring *trace.Ring) error {
	if col == nil {
		return nil
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for name, write := range map[string]func(*os.File) error{
			"metrics.csv":  func(f *os.File) error { return col.WriteCSV(f) },
			"metrics.json": func(f *os.File) error { return col.WriteJSON(f) },
		} {
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				return err
			}
			if err := write(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "%s -> %s\n", col.Summary(), dir)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := col.WriteChromeTrace(f, label, instantsFrom(ring)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "timeline -> %s (open in chrome://tracing or Perfetto)\n", traceOut)
	}
	return nil
}

// instantsFrom converts the trace ring's retained protocol events into
// Chrome-trace instant markers. Ring entries and metric epochs are both
// stamped from the kernel clock, so they land on the same timeline axis.
func instantsFrom(ring *trace.Ring) []metrics.Instant {
	entries := ring.Entries()
	if len(entries) == 0 {
		return nil
	}
	out := make([]metrics.Instant, len(entries))
	for i, e := range entries {
		out[i] = metrics.Instant{At: e.At, Cat: e.Kind, Name: e.Text}
	}
	return out
}

func workloadNames() []string {
	var names []string
	for _, s := range workload.ExtendedCatalog(16, 1, 1) {
		names = append(names, s.Name)
	}
	return names
}

func init() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "atacsim: run one benchmark on one on-chip network architecture\n\n")
		flag.PrintDefaults()
	}
}
