package main

import "testing"

// Config resolution lives in internal/experiments (BuildConfig) and is
// tested there; atacsim only forwards its flags into a Geometry.

func TestWorkloadNames(t *testing.T) {
	names := workloadNames()
	if len(names) != 10 {
		t.Fatalf("%d workloads", len(names))
	}
}
