package main

import (
	"testing"

	"repro/internal/config"
)

func TestBuildConfigNetworks(t *testing.T) {
	cases := map[string]config.NetworkKind{
		"pure":        config.EMeshPure,
		"EMesh-Pure":  config.EMeshPure,
		"bcast":       config.EMeshBCast,
		"EMesh-BCast": config.EMeshBCast,
		"atac":        config.ATAC,
		"atac+":       config.ATACPlus,
		"ATACPlus":    config.ATACPlus,
	}
	for name, want := range cases {
		cfg, err := buildConfig(name, 64, 4, "ackwise", 64, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Network.Kind != want {
			t.Errorf("%s -> %v, want %v", name, cfg.Network.Kind, want)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: invalid config: %v", name, err)
		}
	}
}

func TestBuildConfigRejects(t *testing.T) {
	if _, err := buildConfig("hypercube", 64, 4, "ackwise", 64, 0, 1); err == nil {
		t.Error("unknown network accepted")
	}
	if _, err := buildConfig("atac+", 64, 4, "moesi", 64, 0, 1); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := buildConfig("atac+", 63, 4, "ackwise", 64, 0, 1); err == nil {
		t.Error("non-square core count accepted")
	}
}

func TestBuildConfigSmallClusters(t *testing.T) {
	cfg, err := buildConfig("atac+", 16, 4, "dirkb", 32, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ClusterDim != 2 {
		t.Errorf("ClusterDim = %d, want 2 at 16 cores", cfg.ClusterDim)
	}
	if cfg.Coherence.Kind != config.DirKB || cfg.Network.FlitBits != 32 || cfg.Network.RThres != 3 {
		t.Errorf("flags not applied: %+v", cfg.Network)
	}
}

func TestWorkloadNames(t *testing.T) {
	names := workloadNames()
	if len(names) != 10 {
		t.Fatalf("%d workloads", len(names))
	}
}
