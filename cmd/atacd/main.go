// Command atacd is the simulation-as-a-service daemon: it serves the
// campaign engine over HTTP/JSON. Submitted jobs share the engine's
// worker pool, singleflight dedup, persistent result cache and run
// journal, so identical requests — concurrent or across restarts — cost
// one simulation; progress streams live over Server-Sent Events fed by
// the per-epoch metrics layer.
//
// Usage:
//
//	atacd -addr :8347 -cache-dir /var/cache/atac
//	atacctl -addr http://localhost:8347 submit -bench radix -cores 16
//
// Shutdown is the campaign's two-stage drain: the first SIGINT/SIGTERM
// stops admission (submits get 503, /healthz flips to draining) and lets
// in-flight simulations finish and journal; a second signal — or the
// -grace window expiring — cancels them at the kernel's next poll. A
// restarted daemon pointed at the same cache serves the drained runs'
// results without re-simulating.
//
// The daemon is also crash-only: every accepted job is persisted to a
// durable ledger (jobs.jsonl next to the campaign journal) before the
// 202 response, and startup replays the ledger, re-enqueueing everything
// the previous process owed an answer for. SIGKILL at any instant
// therefore converges to the same bytes — the cache and journal guarantee
// zero duplicate simulations on resume — and atacctl clients ride across
// the restart with retries and SSE reconnection.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/photonics"
	"repro/internal/resultstore"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/tech"
	"repro/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atacd: ")
	os.Exit(run())
}

// selfFromAddr derives this node's ring URL from the listen address when
// -self is not given: ":8347" and wildcard hosts become loopback, which
// is right for single-machine clusters (the smoke test's topology); real
// deployments pass -self explicitly.
func selfFromAddr(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return cluster.NormalizePeer(addr)
	}
	if host == "" || host == "0.0.0.0" || host == "::" || host == "[::]" {
		host = "127.0.0.1"
	}
	return cluster.NormalizePeer("http://" + net.JoinHostPort(host, port))
}

func run() int {
	var (
		addr     = flag.String("addr", ":8347", "HTTP listen address")
		cores    = flag.Int("cores", 64, "default total cores for jobs that do not specify one")
		scale    = flag.Int("scale", 1, "workload scale factor (part of every run's identity)")
		seed     = flag.Int64("seed", 42, "default simulation seed")
		techN    = flag.String("tech", "", "default electrical technology scenario for jobs that do not specify one: "+strings.Join(tech.Scenarios(), ", "))
		opticsN  = flag.String("optics", "", "default optical technology scenario for jobs that do not specify one: "+strings.Join(photonics.Variants(), ", "))
		jobsN    = flag.Int("jobs", 0, "max concurrent simulations (0: REPRO_JOBS env, else GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "parallel PDES shards per simulation (0: REPRO_SHARDS env, else 1 = serial; results and cache entries are identical either way)")
		depth    = flag.Int("queue-depth", 64, "bounded job queue length; beyond it submits get 429")
		cacheDir = flag.String("cache-dir", "", "persistent result cache directory (default: REPRO_CACHE env, else the user cache dir)")
		noCache  = flag.Bool("no-cache", false, "disable the persistent result cache")
		cacheMax = flag.Int64("cache-max-bytes", 0, "bound the on-disk cache, evicting least-recently-used entries (0 = unbounded)")
		epoch    = flag.Int("epoch", 10000, "progress-stream epoch length in cycles (0 disables live epoch events)")

		runTimeout = flag.Duration("run-timeout", 0, "per-run wall-clock deadline (0 = none)")
		retries    = flag.Int("retries", 2, "extra attempts for transiently failed runs (panics, deadlines)")
		grace      = flag.Duration("grace", 30*time.Second, "drain window after SIGINT/SIGTERM before in-flight runs are cancelled")
		storePath  = flag.String("store", "", "durable job ledger path (default: jobs.jsonl next to the cache; requires a cache unless set)")
		noStore    = flag.Bool("no-store", false, "disable the durable job store (jobs do not survive a crash)")
		reqTimeout = flag.Duration("request-timeout", 15*time.Second, "per-request deadline for non-streaming HTTP endpoints")
		showVer    = flag.Bool("version", false, "print the build version and exit")

		peersFlag = flag.String("peers", "", "comma-separated cluster peer base URLs, including this node (empty = single-node)")
		selfFlag  = flag.String("self", "", "this node's base URL as it appears in -peers (default: derived from -addr)")
		replicas  = flag.Int("replicas", 2, "nodes holding each result (owner included); capped at the cluster size")
		probeIvl  = flag.Duration("probe-interval", 2*time.Second, "peer health-probe cadence")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return 0
	}
	// Fail on a scenario typo before binding the listen address.
	if _, err := tech.ByName(*techN); err != nil {
		log.Print(err)
		return experiments.ExitFatal
	}
	if _, err := photonics.ByName(*opticsN); err != nil {
		log.Print(err)
		return experiments.ExitFatal
	}

	r := experiments.NewRunner(experiments.Options{Cores: *cores, Scale: *scale, Seed: *seed,
		Tech: *techN, Optics: *opticsN})
	r.Jobs = *jobsN
	r.Shards = *shards
	r.Retries = *retries
	r.RunTimeout = *runTimeout
	r.RecallFailures = true
	r.EpochCycles = sim.Time(*epoch)
	if *noCache {
		r.Cache = nil
	} else if *cacheDir != "" {
		c, err := experiments.OpenCache(*cacheDir)
		if err != nil {
			log.Print(err)
			return experiments.ExitFatal
		}
		r.Cache = c
	} else if r.Cache == nil {
		if dir := experiments.DefaultCacheDir(); dir != "" {
			if c, err := experiments.OpenCache(dir); err == nil {
				r.Cache = c
			} else {
				log.Printf("warning: %v (continuing without cache)", err)
			}
		}
	}
	if r.Cache != nil {
		r.Cache.MaxBytes = *cacheMax
		r.Cache.Log = func(s string) { log.Print(s) }
		j, err := experiments.OpenJournal(r.Cache.JournalPath())
		if err != nil {
			log.Printf("warning: %v (continuing without journal)", err)
		} else {
			r.Journal = j
			defer func() {
				if err := j.Close(); err != nil {
					log.Printf("warning: journal close: %v", err)
				}
			}()
		}
		log.Printf("cache: %s", r.Cache.Dir())
	}

	// The durable job store: accepted jobs are persisted before the 202
	// and replayed on startup, so SIGKILL loses nothing. Without a cache
	// (or with -no-store) the daemon still runs, just non-durably.
	var store *serve.JobStore
	if !*noStore {
		path := *storePath
		if path == "" && r.Cache != nil {
			path = filepath.Join(r.Cache.Dir(), serve.StoreFileName)
		}
		if path == "" {
			log.Print("warning: no cache and no -store: jobs will not survive a crash")
		} else {
			st, err := serve.OpenJobStore(path)
			if err != nil {
				log.Print(err)
				return experiments.ExitFatal
			}
			store = st
			defer func() {
				if err := st.Close(); err != nil {
					log.Printf("warning: job store close: %v", err)
				}
			}()
			log.Printf("job store: %s (%d pending)", path, st.Pending())
		}
	}

	// Cluster mode: a static -peers list joined by a rendezvous-hash ring.
	// Each node forwards submits to the run hash's owner (falling back to
	// local execution when the owner is probed down), replicates finished
	// results to the hash's replica set, and read-through-fetches misses
	// from peers — so killing any node loses no completed work and costs
	// no duplicate simulation.
	var clusterCfg *serve.ClusterConfig
	if peers := cluster.ParsePeers(*peersFlag); len(peers) > 0 {
		self := cluster.NormalizePeer(*selfFlag)
		if self == "" {
			self = selfFromAddr(*addr)
		}
		ring := cluster.NewRing(peers)
		if !ring.Contains(self) {
			log.Printf("this node (%s) is not in -peers %s; pass -self with its ring URL", self, strings.Join(ring.Peers(), ","))
			return experiments.ExitFatal
		}
		if ring.Len() > 1 {
			var others []string
			for _, p := range ring.Peers() {
				if p != self {
					others = append(others, p)
				}
			}
			prober := cluster.NewProber(others, cluster.ProberOptions{Interval: *probeIvl, Logf: log.Printf})
			prober.Start(context.Background())
			defer prober.Stop()
			pick := func(hash string) []string {
				var out []string
				for _, p := range ring.Replicas(hash, *replicas) {
					if p != self && prober.Healthy(p) {
						out = append(out, p)
					}
				}
				return out
			}
			if r.Cache != nil {
				r.Store = &resultstore.Tiered{
					Local:  r.Cache,
					Remote: &resultstore.Peers{Pick: pick, Schema: version.CacheSchema, Logf: log.Printf},
				}
			} else {
				log.Print("warning: clustered without a cache: results cannot replicate to or be recalled from peers")
			}
			clusterCfg = &serve.ClusterConfig{Self: self, Ring: ring, Healthy: prober.Healthy, Snapshot: prober.Snapshot}
			log.Printf("cluster: %d nodes, self %s, %d replicas per result", ring.Len(), self, *replicas)
		}
	}

	srv := serve.New(r, serve.Options{
		QueueDepth:     *depth,
		Workers:        r.Jobs,
		RequestTimeout: *reqTimeout,
		Store:          store,
		Cluster:        clusterCfg,
	}, log.Printf)
	ctx, stopSignals := r.InstallSignalHandlerHook(*grace, log.Printf, func(stage string) {
		if stage == "drain" {
			srv.Drain()
		}
	})
	defer stopSignals()
	srv.SetBaseContext(ctx)

	// ReadHeaderTimeout guards against peers that open connections and
	// never speak; handler-level timeouts (serve.Options.RequestTimeout)
	// bound everything after the headers.
	hs := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("%s listening on %s", version.String(), *addr)

	select {
	case err := <-errc:
		log.Print(err)
		return experiments.ExitFatal
	case <-srv.Draining():
	}

	// Drain: finish what is queued and in flight (bounded by the
	// hard-cancel context), then stop the listener. SSE streams close as
	// their jobs finish, so Shutdown's own grace can stay short.
	log.Print("draining: waiting for in-flight jobs")
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain cut short: %v", err)
	}
	hctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(hctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Print("drained; bye")
	return experiments.ExitOK
}
