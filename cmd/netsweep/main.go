// Command netsweep runs the network-only latency-vs-load sweeps of Fig 3:
// uniform-random unicast traffic with a configurable broadcast fraction,
// swept across offered loads for each routing scheme.
//
// Usage:
//
//	netsweep -cores 256 -loads 0.01,0.05,0.1,0.2 -bcast 0.001
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsweep: ")

	var (
		cores   = flag.Int("cores", 64, "total cores")
		loadStr = flag.String("loads", "0.01,0.02,0.04,0.08,0.12,0.16", "offered loads, flits/cycle/core")
		bcast   = flag.Float64("bcast", 0.001, "broadcast fraction of injected messages")
		warmup  = flag.Uint64("warmup", 3000, "warmup cycles")
		measure = flag.Uint64("measure", 6000, "measurement cycles")
		seed    = flag.Int64("seed", 42, "seed")
	)
	flag.Parse()

	var loads []float64
	for _, s := range strings.Split(*loadStr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			log.Fatalf("bad load %q: %v", s, err)
		}
		loads = append(loads, v)
	}

	o := experiments.Options{Cores: *cores, Scale: 1, Seed: *seed}
	cfg := o.Config(config.ATACPlus)
	schemes := experiments.Fig3Schemes(cfg.MeshDim())

	fmt.Printf("%-10s", "load")
	for _, s := range schemes {
		fmt.Printf("  %14s", s.Name)
	}
	fmt.Println()
	for _, load := range loads {
		fmt.Printf("%-10.3f", load)
		for _, sch := range schemes {
			lat := experiments.SyntheticLatency(o, sch, load, *bcast,
				sim.Time(*warmup), sim.Time(*measure))
			fmt.Printf("  %14.2f", lat)
		}
		fmt.Println()
	}
}
