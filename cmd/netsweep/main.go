// Command netsweep runs the network-only latency-vs-load sweeps of Fig 3:
// synthetic traffic with a configurable pattern and broadcast fraction,
// swept across offered loads for each routing scheme.
//
// The sweep runs through the cached campaign engine, like cmd/figures and
// cmd/sweep: points execute concurrently (up to -jobs), identical points
// are deduplicated, results persist in the on-disk cache, and every
// run-state transition is journaled next to it — so re-running a sweep
// recalls every point instead of re-simulating it.
//
// Usage:
//
//	netsweep -cores 256 -loads 0.01,0.05,0.1,0.2 -bcast 0.001
//	netsweep -pattern tornado -cache-dir /tmp/cache
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netsweep: ")
	os.Exit(run())
}

func run() int {
	var (
		cores    = flag.Int("cores", 64, "total cores")
		loadStr  = flag.String("loads", "0.01,0.02,0.04,0.08,0.12,0.16", "offered loads, flits/cycle/core")
		bcast    = flag.Float64("bcast", 0.001, "broadcast fraction of injected messages")
		pattern  = flag.String("pattern", "uniform", "traffic pattern: "+strings.Join(traffic.Patterns(), ", "))
		warmup   = flag.Uint64("warmup", 3000, "warmup cycles")
		measure  = flag.Uint64("measure", 6000, "measurement cycles")
		seed     = flag.Int64("seed", 42, "seed")
		jobsN    = flag.Int("jobs", 0, "max concurrent simulations (0: REPRO_JOBS env, else GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "persistent result cache directory (default: REPRO_CACHE env, else disabled)")
		noCache  = flag.Bool("no-cache", false, "disable the persistent result cache")
		quiet    = flag.Bool("q", false, "suppress per-run progress")
		showVer  = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return 0
	}

	var loads []float64
	for _, s := range strings.Split(*loadStr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			log.Printf("bad load %q: %v", s, err)
			return experiments.ExitFatal
		}
		loads = append(loads, v)
	}

	o := experiments.Options{Cores: *cores, Scale: 1, Seed: *seed}
	r := experiments.NewRunner(o)
	r.Jobs = *jobsN
	r.RecallFailures = true
	if *noCache {
		r.Cache = nil
	} else if *cacheDir != "" {
		c, err := experiments.OpenCache(*cacheDir)
		if err != nil {
			log.Print(err)
			return experiments.ExitFatal
		}
		r.Cache = c
	}
	if r.Cache != nil {
		r.Cache.Log = func(s string) { log.Print(s) }
		j, err := experiments.OpenJournal(r.Cache.JournalPath())
		if err != nil {
			log.Printf("warning: %v (continuing without journal)", err)
		} else {
			r.Journal = j
			defer func() {
				if err := j.Close(); err != nil {
					log.Printf("warning: journal close: %v", err)
				}
			}()
		}
	}
	if !*quiet {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  ...", s) }
	}
	ctx, stopSignals := r.InstallSignalHandler(15*time.Second, log.Printf)
	defer stopSignals()

	cfg := o.Config(config.ATACPlus)
	schemes := experiments.Fig3Schemes(cfg.MeshDim())
	sp := experiments.SynthSpec{
		Pattern:   *pattern,
		BcastFrac: *bcast,
		Warmup:    sim.Time(*warmup),
		Measure:   sim.Time(*measure),
	}
	// Declare the whole (scheme x load) run-set up front so the worker
	// pool is saturated; the table renders from warm memo/cache entries.
	// Per-point errors surface as comment rows below.
	_ = r.RunAll(ctx, r.SynthSpecs(schemes, loads, sp))

	fmt.Printf("%-10s", "load")
	for _, s := range schemes {
		fmt.Printf("  %14s", s.Name)
	}
	fmt.Println()
	for _, load := range loads {
		fmt.Printf("%-10.3f", load)
		pt := sp
		pt.Load = load
		var failures []string
		for _, sch := range schemes {
			res, err := r.RunSynthetic(r.SchemeConfig(sch), pt)
			if err != nil {
				fmt.Printf("  %14s", "—")
				failures = append(failures, fmt.Sprintf("%s: %v", sch.Name, err))
				continue
			}
			fmt.Printf("  %14.2f", res.Synth.MeanLat)
		}
		fmt.Println()
		for _, f := range failures {
			fmt.Printf("# load %.3f %s\n", load, f)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweep: %d simulations run, %d recalled from cache\n",
			r.FreshRuns(), r.CacheHits())
	}
	return r.ExitCode()
}
