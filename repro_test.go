package repro

import "testing"

func TestPublicAPISurface(t *testing.T) {
	cfg := SmallConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(Benchmarks()); got != 8 {
		t.Fatalf("Benchmarks() has %d entries, want 8", got)
	}
	names := WorkloadNames(16, 1, 1)
	if len(names) != 8 {
		t.Fatalf("WorkloadNames: %v", names)
	}
}

func TestRunBenchmarkEndToEnd(t *testing.T) {
	cfg := SmallConfig()
	cfg.Cores = 16
	cfg.ClusterDim = 2
	cfg.Caches.DirSlices = 4
	cfg.Memory.Controllers = 4
	cfg.Network.RThres = 2
	res, err := RunBenchmark(cfg, "fmm", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || !res.Finished {
		t.Fatalf("bad result: %+v", res)
	}
	bd, err := EnergyOf(res)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= 0 {
		t.Fatal("non-positive total energy")
	}
	edp, err := EDPOf(res)
	if err != nil || edp <= 0 {
		t.Fatalf("EDP %v, err %v", edp, err)
	}
	area, err := AreaOf(cfg)
	if err != nil || area.Total() <= 0 {
		t.Fatalf("area %v, err %v", area, err)
	}
}

func TestDefaultConfigIsPaperScale(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Cores != 1024 || cfg.Clusters() != 64 {
		t.Errorf("default config %d cores / %d clusters, want 1024/64", cfg.Cores, cfg.Clusters())
	}
	if cfg.Network.Kind != ATACPlus {
		t.Errorf("default network %v, want ATAC+", cfg.Network.Kind)
	}
}

func TestCampaignConstruction(t *testing.T) {
	o := DefaultCampaignOptions()
	c := NewCampaign(o)
	if c == nil || c.Opt.Cores < 16 {
		t.Fatalf("bad campaign %+v", c)
	}
}
