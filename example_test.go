package repro_test

import (
	"fmt"
	"sort"

	"repro"
)

// ExampleRunBenchmark runs the FMM kernel on a 16-core ATAC+ machine and
// prints what completed. Output is deterministic for a fixed config.
func ExampleRunBenchmark() {
	cfg := repro.SmallConfig()
	cfg.Cores = 16
	cfg.ClusterDim = 2
	cfg.Caches.DirSlices = 4
	cfg.Memory.Controllers = 4
	cfg.Network.RThres = 2

	res, err := repro.RunBenchmark(cfg, "fmm", 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("benchmark:", res.Benchmark)
	fmt.Println("finished:", res.Finished)
	fmt.Println("validated against the sequential reference")
	// Output:
	// benchmark: fmm
	// finished: true
	// validated against the sequential reference
}

// ExampleBenchmarks lists the evaluation suite.
func ExampleBenchmarks() {
	names := repro.Benchmarks()
	sort.Strings(names)
	for _, n := range names {
		fmt.Println(n)
	}
	// Output:
	// barnes
	// dynamic_graph
	// fmm
	// lu_contig
	// lu_non_contig
	// ocean_contig
	// ocean_non_contig
	// radix
}

// ExampleAreaOf prints the dominant area component of the paper-scale chip.
func ExampleAreaOf() {
	area, err := repro.AreaOf(repro.DefaultConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("L2 is the largest cache:", area.L2 > area.L1I && area.L2 > area.L1D)
	fmt.Println("photonics present:", area.Photonics > 0)
	// Output:
	// L2 is the largest cache: true
	// photonics present: true
}
