GO ?= go

.PHONY: build test check figures bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full pre-merge gate: compile, vet, and the test suite under
# the race detector (the cpu package drives program goroutines through a
# kernel handshake — races there would silently break determinism).
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

figures:
	$(GO) run ./cmd/figures -cores 64

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
