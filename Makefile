GO ?= go

.PHONY: build test check figures bench fuzz resume-smoke serve-smoke chaos-smoke cluster-smoke techsweep-smoke xtopo-smoke clean

# Per-target budget for `make fuzz` (go test -fuzztime syntax).
FUZZTIME ?= 10s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full pre-merge gate: compile, vet, and the test suite under
# the race detector (the cpu package drives program goroutines through a
# kernel handshake — races there would silently break determinism).
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

figures:
	$(GO) run ./cmd/figures -cores 64

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Fuzz the flit-conservation property (exactly-once delivery under
# randomized traffic and fault seeds) for FUZZTIME per target. Go allows
# one -fuzz target per invocation, so the targets run back to back.
fuzz:
	$(GO) test ./internal/noc -run '^$$' -fuzz '^FuzzMeshConservation$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/noc -run '^$$' -fuzz '^FuzzAtacConservation$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/noc -run '^$$' -fuzz '^FuzzCrossbarConservation$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/noc -run '^$$' -fuzz '^FuzzHybridConservation$$' -fuzztime $(FUZZTIME)

# End-to-end crash-safety smoke: SIGINT a figure campaign mid-flight,
# resume it from the journal+cache, and require byte-identical output with
# zero duplicate simulations.
resume-smoke:
	bash scripts/interrupt_resume.sh

# End-to-end smoke of the serving daemon: start atacd, submit a run via
# atacctl with live SSE progress, require the served result to match a
# direct atacsim run, coalesce a resubmission, then SIGTERM-drain and
# check a restarted daemon serves the run from the persistent cache.
serve-smoke:
	bash scripts/serve_smoke.sh

# Crash-only contract of the serving stack: SIGKILL atacd at seeded random
# points mid-campaign, restart it, and require that every atacctl client
# rides across on its own retries, the resumed campaign completes with
# zero duplicate simulations (journal-verified), and the served results
# match a direct atacsim run. CHAOS_SEED / CHAOS_KILLS tune the schedule.
chaos-smoke:
	bash scripts/chaos_smoke.sh

# Fault-tolerance contract of the atacd cluster: three nodes (separate
# caches/ledgers) on one rendezvous-hash ring, a campaign submitted
# through the cluster, and the node owning the first run's hash is
# SIGKILLed mid-flight. Clients must survive on hedged reads + automatic
# resubmission, results must match a direct atacsim run byte for byte,
# the concatenated journals must show zero duplicate simulations, and
# the restarted node must rejoin and drain from its peers' caches.
cluster-smoke:
	bash scripts/cluster_smoke.sh

# End-to-end smoke of the technology-scenario layer: the techsweep figure
# (two scenarios, 16 cores) through the cached Runner — per-scenario rows
# and manifest provenance, a fully-cached second pass with byte-identical
# output, and quarantine of stale pre-current-schema cache entries.
techsweep-smoke:
	bash scripts/techsweep_smoke.sh

# End-to-end smoke of the crossbar backends: the xtopo figure (EMesh-BCast
# vs Corona, 16 cores) through the cached Runner — per-topology column
# groups, a fully-cached second pass with byte-identical output, and
# quarantine of pre-crossbar cache entries.
xtopo-smoke:
	bash scripts/xtopo_smoke.sh

clean:
	$(GO) clean ./...
