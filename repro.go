// Package repro is the public facade of the ATAC+ cross-layer evaluation
// framework: a from-scratch reproduction of "Cross-layer Energy and
// Performance Evaluation of a Nanophotonic Manycore Processor System Using
// Real Application Workloads" (IPDPS 2012).
//
// The framework couples an execution-driven 1000-core architectural
// simulator (cores, private caches, ACKwise/Dir_kB coherence, cycle-level
// electrical and optical networks) with DSENT/McPAT-style energy and area
// models, and regenerates every table and figure of the paper's
// evaluation.
//
// Quick start:
//
//	cfg := repro.DefaultConfig()          // 1024-core ATAC+ (Table I)
//	cfg.Cores = 64                        // scale down for a laptop
//	cfg.Caches.DirSlices = 16
//	cfg.Memory.Controllers = 16
//	res, err := repro.RunBenchmark(cfg, "radix", 1)
//	bd, err2 := repro.EnergyOf(res)       // component energy breakdown
//
// The experiment harness behind the paper's figures is exposed through
// NewCampaign; see cmd/figures for end-to-end usage.
package repro

import (
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/system"
	"repro/internal/workload"
)

// Re-exported core types.
type (
	// Config is the full system configuration (Tables I-IV).
	Config = config.Config
	// Result is the measured outcome of one benchmark run.
	Result = system.Result
	// Breakdown is a component-level energy breakdown in joules.
	Breakdown = energy.Breakdown
	// Area is a die-area breakdown in mm².
	Area = energy.Area
	// Campaign memoizes runs and regenerates the paper's figures.
	Campaign = experiments.Runner
	// CampaignOptions scopes a figure-regeneration campaign.
	CampaignOptions = experiments.Options
	// FigureTable is a printable experiment result.
	FigureTable = experiments.Table
)

// Network architecture selectors.
const (
	EMeshPure  = config.EMeshPure
	EMeshBCast = config.EMeshBCast
	ATAC       = config.ATAC
	ATACPlus   = config.ATACPlus
)

// DefaultConfig returns the paper's 1024-core ATAC+ configuration.
func DefaultConfig() Config { return config.Default() }

// SmallConfig returns a 64-core configuration for quick experiments.
func SmallConfig() Config { return config.Small() }

// Benchmarks lists the eight evaluation applications.
func Benchmarks() []string { return append([]string(nil), experiments.Benchmarks...) }

// RunBenchmark builds a machine for cfg and runs the named benchmark at
// the given problem scale (1 = default), returning its measurements.
func RunBenchmark(cfg Config, name string, scale int) (Result, error) {
	return system.RunBenchmark(cfg, name, scale, 0)
}

// EnergyOf combines a run's counters with the device models of its own
// configuration into a component energy breakdown.
func EnergyOf(res Result) (Breakdown, error) {
	m, err := energy.Build(res.Cfg)
	if err != nil {
		return Breakdown{}, err
	}
	return energy.Combine(m, res), nil
}

// EDPOf returns a run's energy-delay product in joule-seconds.
func EDPOf(res Result) (float64, error) {
	m, err := energy.Build(res.Cfg)
	if err != nil {
		return 0, err
	}
	return energy.EDP(m, res), nil
}

// AreaOf returns the die area breakdown for a configuration.
func AreaOf(cfg Config) (Area, error) {
	m, err := energy.Build(cfg)
	if err != nil {
		return Area{}, err
	}
	return energy.ComputeArea(m), nil
}

// NewCampaign builds a memoizing figure-regeneration campaign.
func NewCampaign(o CampaignOptions) *Campaign { return experiments.NewRunner(o) }

// DefaultCampaignOptions returns the default campaign scale (64 cores;
// set REPRO_FULL=1 for the paper's 1024-core geometry).
func DefaultCampaignOptions() CampaignOptions { return experiments.DefaultOptions() }

// WorkloadNames verifies a benchmark name, returning the catalog entry.
func WorkloadNames(cores int, seed int64, scale int) []string {
	var names []string
	for _, s := range workload.Catalog(cores, seed, scale) {
		names = append(names, s.Name)
	}
	return names
}
